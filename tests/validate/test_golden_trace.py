"""Golden-trace regression harness.

Two tiny-scale scenarios — the Figure 3 websearch sweep point and the
Figure 9c incast — are fingerprinted with the order-independent run
digest and compared against committed goldens.  Any behavioural change
(scheduling order, drop policy, token pacing, RNG consumption) moves
the digest even when summary statistics barely shift.

To refresh after an intentional change::

    PYTHONPATH=src python scripts/refresh_goldens.py

Both scenarios also run under the full auditor set and must pass with
zero violations — the goldens certify *validated* behaviour, not just
reproducible behaviour.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.defaults import SCALES, make_spec
from repro.experiments.runner import run_experiment, run_incast
from repro.validate import incast_digest, run_digest, standard_auditors

GOLDEN_PATH = Path(__file__).parent / "golden_digests.json"


def _fig3_tiny(instruments=(), protocol="phost"):
    spec = make_spec(protocol, "websearch", "tiny", seed=42)
    return run_experiment(spec.variant(instruments=instruments))


def _fig9c_tiny(instruments=(), protocol="phost"):
    return run_incast(
        protocol,
        n_senders=9,
        total_bytes=1_000_000,
        n_requests=3,
        topology=SCALES["tiny"].topology,
        seed=42,
        instruments=instruments,
    )


def _figT_tiny(instruments=(), protocol="phost"):
    """The canonical figT adversarial scenario: hot-rack skew with
    affinity, a mid-run load burst, and coflow-structured arrivals —
    every new workload axis consumes RNG in one fingerprinted run."""
    from repro.workloads.coflows import CoflowConfig
    from repro.workloads.ramp import LoadProfile
    from repro.workloads.skew import SkewConfig

    spec = make_spec(protocol, "websearch", "tiny", seed=42).variant(
        traffic_matrix="skewed",
        skew=SkewConfig(hot_racks=(0,), src_hot_fraction=0.6,
                        dst_hot_fraction=0.8, rack_affinity=0.2),
        load_profile=LoadProfile(((0.0, 1.0), (0.005, 3.0), (0.01, 1.0))),
        coflows=CoflowConfig(min_flows=2, max_flows=5),
    )
    return run_experiment(spec.variant(instruments=instruments))


#: Protocols with committed golden fingerprints: the paper's lead
#: transport plus the repository-added DCTCP baseline (which always
#: runs on the generic dataplane engine, so its goldens also pin the
#: ProgramQueue semantics and the stage-ledger audits).
GOLDEN_PROTOCOLS = ("phost", "dctcp")


def compute_goldens():
    """(digests, audit reports) for every golden scenario.

    Shared with ``scripts/refresh_goldens.py`` so the committed file and
    the test can never disagree about what is being fingerprinted.
    """
    digests = {}
    reports = {}
    for protocol in GOLDEN_PROTOCOLS:
        fig3 = _fig3_tiny(standard_auditors(), protocol)
        fig9c = _fig9c_tiny(standard_auditors(), protocol)
        figT = _figT_tiny(standard_auditors(), protocol)
        digests[f"fig3-tiny-{protocol}-websearch-seed42"] = run_digest(fig3)
        digests[f"fig9c-tiny-{protocol}-incast9-seed42"] = incast_digest(fig9c)
        digests[f"figT-tiny-{protocol}-skew-coflow-burst-seed42"] = run_digest(figT)
        reports[f"fig3-tiny-{protocol}-websearch-seed42"] = fig3.audit
        reports[f"fig9c-tiny-{protocol}-incast9-seed42"] = fig9c.audit
        reports[f"figT-tiny-{protocol}-skew-coflow-burst-seed42"] = figT.audit
    return digests, reports


@pytest.fixture(scope="module")
def goldens():
    assert GOLDEN_PATH.exists(), (
        "no committed goldens; run scripts/refresh_goldens.py"
    )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def computed():
    return compute_goldens()


@pytest.mark.parametrize("protocol", GOLDEN_PROTOCOLS)
def test_fig3_audit_clean(computed, protocol):
    report = computed[1][f"fig3-tiny-{protocol}-websearch-seed42"]
    assert report.ok, report.summary()
    assert report.total_violations == 0


@pytest.mark.parametrize("protocol", GOLDEN_PROTOCOLS)
def test_fig9c_audit_clean(computed, protocol):
    report = computed[1][f"fig9c-tiny-{protocol}-incast9-seed42"]
    assert report.ok, report.summary()


@pytest.mark.parametrize("protocol", GOLDEN_PROTOCOLS)
def test_figT_audit_clean(computed, protocol):
    report = computed[1][f"figT-tiny-{protocol}-skew-coflow-burst-seed42"]
    assert report.ok, report.summary()
    assert report.total_violations == 0


def test_dctcp_goldens_audit_stage_ledgers(computed):
    """The DCTCP goldens certify the generic engine: its audit must have
    actually exercised the dataplane stage-ledger checks."""
    report = computed[1]["fig3-tiny-dctcp-websearch-seed42"]
    invariants = report.to_dict()["auditors"]["conservation"]["invariants"]
    assert invariants["dataplane-stage-ledger"]["checked"] > 0
    assert invariants["dataplane-mark-ledger"]["checked"] > 0


def test_digests_match_committed_goldens(computed, goldens):
    assert computed[0] == goldens, (
        "run digests diverged from committed goldens; if the behaviour "
        "change is intentional, run scripts/refresh_goldens.py"
    )


def test_fig3_digest_stable_across_invocations(computed):
    again = run_digest(_fig3_tiny())
    assert again == computed[0]["fig3-tiny-phost-websearch-seed42"], (
        "same spec, two invocations, different digests — and the first "
        "run carried auditors, so attaching them must not perturb the "
        "simulation either"
    )


def test_fig9c_digest_stable_across_invocations(computed):
    again = incast_digest(_fig9c_tiny())
    assert again == computed[0]["fig9c-tiny-phost-incast9-seed42"]


def test_figT_digest_stable_across_invocations(computed):
    again = run_digest(_figT_tiny())
    assert again == computed[0]["figT-tiny-phost-skew-coflow-burst-seed42"]
