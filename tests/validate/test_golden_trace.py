"""Golden-trace regression harness.

Two tiny-scale scenarios — the Figure 3 websearch sweep point and the
Figure 9c incast — are fingerprinted with the order-independent run
digest and compared against committed goldens.  Any behavioural change
(scheduling order, drop policy, token pacing, RNG consumption) moves
the digest even when summary statistics barely shift.

To refresh after an intentional change::

    PYTHONPATH=src python scripts/refresh_goldens.py

Both scenarios also run under the full auditor set and must pass with
zero violations — the goldens certify *validated* behaviour, not just
reproducible behaviour.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.defaults import SCALES, make_spec
from repro.experiments.runner import run_experiment, run_incast
from repro.validate import incast_digest, run_digest, standard_auditors

GOLDEN_PATH = Path(__file__).parent / "golden_digests.json"


def _fig3_tiny(instruments=()):
    spec = make_spec("phost", "websearch", "tiny", seed=42)
    return run_experiment(spec.variant(instruments=instruments))


def _fig9c_tiny(instruments=()):
    return run_incast(
        "phost",
        n_senders=9,
        total_bytes=1_000_000,
        n_requests=3,
        topology=SCALES["tiny"].topology,
        seed=42,
        instruments=instruments,
    )


def compute_goldens():
    """(digests, audit reports) for every golden scenario.

    Shared with ``scripts/refresh_goldens.py`` so the committed file and
    the test can never disagree about what is being fingerprinted.
    """
    fig3 = _fig3_tiny(standard_auditors())
    fig9c = _fig9c_tiny(standard_auditors())
    digests = {
        "fig3-tiny-phost-websearch-seed42": run_digest(fig3),
        "fig9c-tiny-phost-incast9-seed42": incast_digest(fig9c),
    }
    reports = {
        "fig3-tiny-phost-websearch-seed42": fig3.audit,
        "fig9c-tiny-phost-incast9-seed42": fig9c.audit,
    }
    return digests, reports


@pytest.fixture(scope="module")
def goldens():
    assert GOLDEN_PATH.exists(), (
        "no committed goldens; run scripts/refresh_goldens.py"
    )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def computed():
    return compute_goldens()


def test_fig3_audit_clean(computed):
    report = computed[1]["fig3-tiny-phost-websearch-seed42"]
    assert report.ok, report.summary()
    assert report.total_violations == 0


def test_fig9c_audit_clean(computed):
    report = computed[1]["fig9c-tiny-phost-incast9-seed42"]
    assert report.ok, report.summary()


def test_digests_match_committed_goldens(computed, goldens):
    assert computed[0] == goldens, (
        "run digests diverged from committed goldens; if the behaviour "
        "change is intentional, run scripts/refresh_goldens.py"
    )


def test_fig3_digest_stable_across_invocations(computed):
    again = run_digest(_fig3_tiny())
    assert again == computed[0]["fig3-tiny-phost-websearch-seed42"], (
        "same spec, two invocations, different digests — and the first "
        "run carried auditors, so attaching them must not perturb the "
        "simulation either"
    )


def test_fig9c_digest_stable_across_invocations(computed):
    again = incast_digest(_fig9c_tiny())
    assert again == computed[0]["fig9c-tiny-phost-incast9-seed42"]
