"""Live progress telemetry for experiment sweeps.

The contract under test: progress observation (start/running/done
events fanned out of ``run_experiments_parallel``) is side-effect
free — results stay digest-identical to unobserved runs.
"""

from __future__ import annotations

import io

import pytest

from repro.experiments.parallel import run_experiments_parallel
from repro.experiments.progress import (
    ProgressEvent,
    ProgressPrinter,
    format_event,
    spec_label,
)
from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.net.topology import TopologyConfig
from repro.validate import run_digest


def _tiny_spec(seed=42, **overrides):
    base = dict(
        protocol="phost",
        workload="fixed:20000",
        n_flows=8,
        topology=TopologyConfig.small(),
        seed=seed,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


# ----------------------------------------------------------------------
# Event formatting
# ----------------------------------------------------------------------

def test_spec_label_prefers_explicit_label():
    assert spec_label(_tiny_spec(label="fig3 smoke")) == "fig3 smoke"
    auto = spec_label(_tiny_spec())
    assert "phost" in auto and "seed=42" in auto


def test_format_event_per_state():
    base = dict(index=0, total=3, label="x")
    assert format_event(ProgressEvent(state="start", **base)) == "[1/3] x: started"
    running = format_event(
        ProgressEvent(
            state="running",
            events=1024,
            events_per_sec=2000.0,
            sim_now=0.001,
            eta_seconds=1.5,
            **base,
        )
    )
    assert "1,024 ev" in running and "ETA 1.5s" in running
    unknown_eta = format_event(ProgressEvent(state="running", **base))
    assert "ETA ?" in unknown_eta
    done = format_event(
        ProgressEvent(state="done", events=99, wall_seconds=0.5, **base)
    )
    assert "done" in done and "99 events" in done and "0.50s" in done
    err = format_event(ProgressEvent(state="error", error="boom", **base))
    assert "FAILED" in err and "boom" in err


def test_progress_printer_counts_and_prints():
    stream = io.StringIO()
    printer = ProgressPrinter(stream)
    total = dict(total=2, label="x")
    printer(ProgressEvent(index=0, state="start", **total))
    printer(ProgressEvent(index=0, state="done", events=5, **total))
    printer(ProgressEvent(index=1, state="error", error="boom", **total))
    assert printer.done == 1 and printer.failed == 1
    out = stream.getvalue()
    assert "[1/2 finished]" in out and "[2/2 finished]" in out


# ----------------------------------------------------------------------
# Serial path (processes=1)
# ----------------------------------------------------------------------

def test_serial_progress_emits_start_and_done():
    events = []
    results = run_experiments_parallel(
        [_tiny_spec(seed=s) for s in (42, 43)],
        processes=1,
        progress=events.append,
    )
    assert len(results) == 2
    states = [(e.index, e.state) for e in events if e.state != "running"]
    assert states == [(0, "start"), (0, "done"), (1, "start"), (1, "done")]
    done = [e for e in events if e.state == "done"]
    assert done[0].events == results[0].events_processed
    assert done[0].wall_seconds == results[0].wall_seconds
    assert all(e.total == 2 for e in events)


def test_zero_interval_heartbeats_emit_running_events():
    events = []
    run_experiments_parallel(
        [_tiny_spec(n_flows=40)],
        processes=1,
        progress=events.append,
        heartbeat_wall_seconds=0.0,
    )
    running = [e for e in events if e.state == "running"]
    assert running, "interval=0 must emit a heartbeat at every profiler check"
    assert running[-1].events > 0
    assert running[-1].sim_now > 0.0


def test_progress_does_not_change_results():
    spec = _tiny_spec()
    plain = run_experiment(spec)
    observed = run_experiments_parallel(
        [spec], processes=1, progress=lambda e: None, heartbeat_wall_seconds=0.0
    )[0]
    assert run_digest(observed) == run_digest(plain)
    assert observed.events_processed == plain.events_processed


def test_serial_error_emits_error_event_and_raises():
    events = []
    with pytest.raises(Exception):
        run_experiments_parallel(
            [_tiny_spec(protocol="no-such-protocol")],
            processes=1,
            progress=events.append,
        )
    assert [e.state for e in events] == ["start", "error"]
    assert events[-1].error


# ----------------------------------------------------------------------
# Parallel path (worker queue fan-out)
# ----------------------------------------------------------------------

def test_parallel_progress_matches_serial_results():
    specs = [_tiny_spec(seed=s) for s in (42, 43, 44)]
    events = []
    parallel = run_experiments_parallel(
        specs, processes=2, progress=events.append
    )
    serial = [run_experiment(s) for s in specs]
    assert [run_digest(r) for r in parallel] == [run_digest(r) for r in serial]
    # Every spec reported a start and a done, with its own index.
    for i in range(len(specs)):
        mine = [e.state for e in events if e.index == i]
        assert mine[0] == "start" and mine[-1] == "done"
    done = {e.index: e for e in events if e.state == "done"}
    assert done[0].events == parallel[0].events_processed


def test_parallel_progress_true_prints_to_stderr(capsys):
    run_experiments_parallel(
        [_tiny_spec(seed=s) for s in (42, 43)], processes=2, progress=True
    )
    err = capsys.readouterr().err
    assert "started" in err and "done" in err and "[2/2 finished]" in err
