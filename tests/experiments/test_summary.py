"""Tests for the paper-vs-measured report generator."""

from __future__ import annotations

from repro.experiments import figures
from repro.experiments.cli import main
from repro.experiments.report import FigureResult
from repro.experiments.summary import (
    PAPER_EXPECTATIONS,
    summarize,
    write_experiments_md,
)


def test_every_figure_has_a_paper_expectation():
    assert set(PAPER_EXPECTATIONS) == set(figures.ALL_FIGURES)


def test_summarize_fig3_reports_ratios():
    result = FigureResult(
        figure="fig3", title="t", columns=["workload", "phost", "pfabric", "fastpass"],
        rows=[{"workload": "imc10", "phost": 1.2, "pfabric": 1.0, "fastpass": 4.8}],
    )
    summary = summarize(result)
    assert "pHost/pFabric 1.20x" in summary.measured
    assert "Fastpass/pHost 4.00x" in summary.measured
    assert summary.paper == PAPER_EXPECTATIONS["fig3"]


def test_summarize_handles_nan_and_unknown_figures():
    result = FigureResult(
        figure="fig3", title="t", columns=["workload", "phost", "pfabric", "fastpass"],
        rows=[{"workload": "x", "phost": float("nan"), "pfabric": 0.0, "fastpass": 1.0}],
    )
    assert "n/a" in summarize(result).measured
    unknown = FigureResult(figure="figZ", title="t", columns=["a"], rows=[])
    assert summarize(unknown).measured == "see table"


def test_write_experiments_md_subset(tmp_path):
    figures.clear_cache()
    out = write_experiments_md(
        tmp_path / "EXPERIMENTS.md",
        scale="tiny",
        seed=7,
        figures=["fig2", "fig3"],
        header_note="test run",
    )
    text = out.read_text()
    assert "## fig2" in text and "## fig3" in text
    assert "**Paper:**" in text
    assert "**Measured (tiny):**" in text
    assert "== fig3" in text  # rendered table embedded
    assert "test run" in text


def test_cli_report_mode(tmp_path, capsys):
    target = tmp_path / "report.md"
    assert main([
        "--report", str(target), "--scale", "tiny", "--figure", "fig2",
    ]) == 0
    assert target.exists()
    assert "## fig2" in target.read_text()
