"""Tests for the extended CLI modes: JSON output, sweeps, trace replay."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import main
from repro.sim.randoms import SeededRng
from repro.workloads.distributions import imc10
from repro.workloads.generator import FlowGenerator
from repro.workloads.traffic_matrix import AllToAll
from repro.workloads.trace_io import save_flows


def test_run_json_output(capsys):
    assert main(["--run", "phost", "imc10", "--scale", "tiny",
                 "--flows", "40", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["protocol"] == "phost"
    assert payload["n_completed"] == payload["n_flows"] == 40
    assert payload["mean_slowdown"] >= 1.0
    assert set(payload["drops"]) == {1, 2, 3, 4} or set(payload["drops"]) == {"1", "2", "3", "4"}


def test_sweep_over_load(capsys):
    assert main(["--sweep", "load", "phost", "imc10", "--scale", "tiny",
                 "--values", "0.4,0.7"]) == 0
    out = capsys.readouterr().out
    assert "sweep over load" in out
    assert "0.4" in out and "0.7" in out


def test_sweep_json(capsys):
    assert main(["--sweep", "load", "pfabric", "imc10", "--scale", "tiny",
                 "--values", "0.5", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["figure"] == "sweep:load"
    assert len(payload["rows"]) == 1


def test_sweep_unknown_field_errors(capsys):
    assert main(["--sweep", "warp_factor", "phost", "imc10",
                 "--scale", "tiny", "--values", "9"]) == 2
    assert "no field" in capsys.readouterr().err


def test_sweep_integer_field(capsys):
    assert main(["--sweep", "n_flows", "phost", "imc10", "--scale", "tiny",
                 "--values", "20,40"]) == 0
    out = capsys.readouterr().out
    assert "20" in out and "40" in out


def test_replay_mode(tmp_path, capsys):
    gen = FlowGenerator(imc10(), AllToAll(12), 10e9, 0.4, SeededRng(3))
    trace = tmp_path / "flows.csv"
    save_flows(gen.generate(25), trace)
    assert main(["--replay", str(trace), "--scale", "tiny",
                 "--protocol", "pfabric", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["protocol"] == "pfabric"
    assert payload["n_completed"] == 25


def test_figure_json(capsys):
    assert main(["--figure", "fig2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["figure"] == "fig2"
    assert payload["rows"]


def test_profile_mode(capsys):
    from repro.experiments.cli import main as cli_main

    assert cli_main(["--size-profile", "phost", "imc10", "--scale", "tiny",
                     "--flows", "60"]) == 0
    out = capsys.readouterr().out
    assert "slowdown by flow size" in out
    assert "slowdown trend:" in out


def test_profile_json(capsys):
    import json as json_mod
    from repro.experiments.cli import main as cli_main

    assert cli_main(["--size-profile", "pfabric", "imc10", "--scale", "tiny",
                     "--flows", "60", "--json"]) == 0
    payload = json_mod.loads(capsys.readouterr().out)
    assert payload["figure"] == "size-profile"
    assert payload["rows"]
