"""Tests for the parallel runner and JSON batch files."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import main
from repro.experiments.defaults import make_spec
from repro.experiments.parallel import run_experiments_parallel
from repro.experiments.runner import run_experiment
from repro.experiments.specfile import SpecFileError, load_spec_file


def tiny_specs():
    return [
        make_spec("phost", "imc10", "tiny", seed=1, n_flows=40),
        make_spec("pfabric", "imc10", "tiny", seed=2, n_flows=40),
        make_spec("fastpass", "imc10", "tiny", seed=3, n_flows=40),
    ]


def test_parallel_matches_serial():
    specs = tiny_specs()
    serial = [run_experiment(s) for s in specs]
    parallel = run_experiments_parallel(specs, processes=3)
    for a, b in zip(serial, parallel):
        assert a.spec.protocol == b.spec.protocol
        assert [r.finish for r in a.records] == [r.finish for r in b.records]
        assert a.drops.by_hop == b.drops.by_hop


def test_parallel_single_process_path():
    specs = tiny_specs()[:1]
    (result,) = run_experiments_parallel(specs, processes=1)
    assert result.completion_rate == 1.0
    assert run_experiments_parallel([]) == []
    with pytest.raises(ValueError):
        run_experiments_parallel(specs, processes=0)


def _write_batch(tmp_path, payload):
    path = tmp_path / "batch.json"
    path.write_text(json.dumps(payload))
    return path


def test_spec_file_parsing(tmp_path):
    path = _write_batch(tmp_path, {
        "defaults": {"workload": "imc10", "scale": "tiny", "n_flows": 30},
        "experiments": [
            {"name": "a", "protocol": "phost"},
            {"name": "b", "protocol": "pfabric", "load": 0.8},
        ],
    })
    named = load_spec_file(path)
    assert [n for n, _ in named] == ["a", "b"]
    assert named[0][1].protocol == "phost"
    assert named[1][1].load == 0.8
    assert named[0][1].n_flows == 30


@pytest.mark.parametrize(
    "payload",
    [
        {"experiments": []},                                   # empty list
        {"experiments": [{"name": "x"}]},                      # no protocol
        {"experiments": [{"protocol": "phost"}]},              # no workload
        {"defaults": [], "experiments": [{}]},                 # bad defaults
        {"experiments": [
            {"name": "a", "protocol": "phost", "workload": "imc10"},
            {"name": "a", "protocol": "pfabric", "workload": "imc10"},
        ]},                                                     # dup names
        {"experiments": [{"name": "a", "protocol": "phost",
                          "workload": "imc10", "warp": 9}]},    # bad field
    ],
)
def test_spec_file_validation_errors(tmp_path, payload):
    path = _write_batch(tmp_path, payload)
    with pytest.raises(SpecFileError):
        load_spec_file(path)


def test_spec_file_invalid_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(SpecFileError):
        load_spec_file(path)


def test_cli_batch_table_and_json(tmp_path, capsys):
    path = _write_batch(tmp_path, {
        "defaults": {"workload": "imc10", "scale": "tiny", "n_flows": 30},
        "experiments": [
            {"name": "one", "protocol": "phost"},
            {"name": "two", "protocol": "pfabric"},
        ],
    })
    assert main(["--batch", str(path)]) == 0
    out = capsys.readouterr().out
    assert "one" in out and "two" in out and "mean_slowdown" in out

    assert main(["--batch", str(path), "--json", "--parallel", "2"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"one", "two"}
    assert payload["one"]["n_completed"] == 30


def test_cli_batch_error_path(tmp_path, capsys):
    path = _write_batch(tmp_path, {"experiments": [{"name": "x"}]})
    assert main(["--batch", str(path)]) == 2
    assert "error:" in capsys.readouterr().err
