"""Integration smoke of additional figure drivers at tiny scale.

The benchmark suite runs the full drivers at bench scale; these tests
cover the remaining drivers' code paths quickly so `pytest tests/`
alone exercises every figure function.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import figures


@pytest.fixture(scope="module", autouse=True)
def fresh_cache():
    figures.clear_cache()
    yield


def test_fig5a_5b_shapes():
    a = figures.fig5a(scale="tiny", seed=3)
    b = figures.fig5b(scale="tiny", seed=3)
    for row in a.rows:
        assert all(row[p] >= 1.0 for p in ("phost", "pfabric", "fastpass"))
    for row in b.rows:
        assert all(0 < row[p] < 10 for p in ("phost", "pfabric", "fastpass"))


def test_fig5f_accounts_every_protocol():
    result = figures.fig5f(scale="tiny", seed=3)
    assert {row["protocol"] for row in result.rows} == {"phost", "pfabric", "fastpass"}
    for row in result.rows:
        assert row["injected"] > 0


def test_fig9c_and_9d_share_incast_runs():
    figures.fig9c(scale="tiny", seed=3)
    cached = len(figures._INCAST_CACHE)
    figures.fig9d(scale="tiny", seed=3)
    assert len(figures._INCAST_CACHE) == cached  # 9d reused every run


def test_fig10_runs_buffer_sweep():
    result = figures.fig10(scale="tiny", seed=3)
    assert [row["buffer_bytes"] for row in result.rows] == [
        6_000, 12_000, 18_000, 24_000, 36_000, 72_000,
    ]
    assert all(row["phost"] >= 1.0 for row in result.rows)


def test_fig6_covers_grid():
    result = figures.fig6(scale="tiny", seed=3)
    assert len(result.rows) == 12  # 3 workloads x 4 loads
    for row in result.rows:
        for p in ("phost", "pfabric", "fastpass"):
            assert row[p] >= 1.0 or math.isnan(row[p])


def test_long_threshold_adapts_to_truncation():
    # tiny truncates all traces at 200kB -> boundary becomes 200k/3
    assert figures._long_threshold("websearch", "tiny") == 200_000 // 3
    # imc10 at bench is untruncated -> the paper's 100kB split survives
    assert figures._long_threshold("imc10", "bench") == 100_000
    # unknown scale falls back to the paper boundary
    assert figures._long_threshold("websearch", "full") == 10_000_000
