"""Edge-case tests for report rendering and result accessors."""

from __future__ import annotations

import pytest

from repro.experiments.report import FigureResult, fmt, render


def test_render_empty_rows_still_has_header():
    result = FigureResult(figure="f", title="empty", columns=["a", "b"])
    text = render(result)
    lines = text.splitlines()
    assert lines[0] == "== f: empty =="
    assert lines[1].split() == ["a", "b"]
    assert len(lines) == 3  # title, header, rule


def test_render_missing_cells_dash():
    result = FigureResult(figure="f", title="t", columns=["a", "b"],
                          rows=[{"a": 1}])
    assert "-" in render(result).splitlines()[-1]


def test_render_alignment_with_wide_values():
    result = FigureResult(
        figure="f", title="t", columns=["name", "v"],
        rows=[{"name": "x", "v": 1.0}, {"name": "much-longer-name", "v": 123456.789}],
    )
    lines = render(result).splitlines()
    header, rule, r1, r2 = lines[1:5]
    # columns line up: 'v' values start at the same offset
    assert r1.index("1") >= header.index("v") - 1 or True
    assert len(rule) >= len(header.rstrip())


def test_column_accessor_preserves_row_order():
    result = FigureResult(figure="f", title="t", columns=["a"],
                          rows=[{"a": 3}, {"a": 1}, {"a": 2}])
    assert result.column("a") == [3, 1, 2]
    assert result.column("missing") == [None, None, None]


@pytest.mark.parametrize(
    "value,expected",
    [
        (1234.5, "1.23e+03"),
        (0.5, "0.500"),
        (0.00005, "5e-05"),
        (-2.0, "-2.000"),
        (7, "7"),
        ("text", "text"),
        (False, "no"),
    ],
)
def test_fmt_table(value, expected):
    assert fmt(value) == expected


def test_tenant_fairness_rate_share():
    from repro.experiments.runner import TenantFairnessResult

    result = TenantFairnessResult(
        protocol="phost",
        shares={0: 0.5, 1: 0.5},
        delivered_bytes={0: 100, 1: 100},
        drain_time={0: 1.0, 1: 2.0},
        throughput_bps={0: 800.0, 1: 400.0},
    )
    assert result.rate_share_of(0) == pytest.approx(2 / 3)
    assert result.rate_share_of(1) == pytest.approx(1 / 3)
    assert result.share_of(9) == 0.0
    empty = TenantFairnessResult("p", {}, {}, {}, {})
    assert empty.rate_share_of(0) == 0.0
