"""Tests for figure drivers, report rendering, and the CLI."""

from __future__ import annotations

import pytest

from repro.experiments import figures
from repro.experiments.cli import main
from repro.experiments.report import FigureResult, fmt, render


def test_fig2_reports_cdf_rows_without_simulation():
    result = figures.fig2()
    assert result.figure == "fig2"
    assert [c for c in result.columns] == ["size_bytes", "websearch", "datamining", "imc10"]
    # CDF values are monotone in size per workload
    for workload in ("websearch", "datamining", "imc10"):
        col = result.column(workload)
        assert col == sorted(col)
        assert col[-1] == 1.0


def test_fig3_tiny_reproduces_headline_ordering():
    figures.clear_cache()
    result = figures.fig3(scale="tiny", seed=7)
    assert len(result.rows) == 3
    for row in result.rows:
        assert row["phost"] >= 1.0
        assert row["pfabric"] >= 1.0
    # the heavy-tailed small-flow workloads show the Fastpass penalty
    im = result.row_where(workload="imc10")
    assert im["fastpass"] > 1.5 * im["phost"]
    # pHost is in pFabric's ballpark, not Fastpass's
    assert im["phost"] < 2.0 * im["pfabric"]


def test_fig4_uses_fig3_cache():
    figures.clear_cache()
    figures.fig3(scale="tiny", seed=7)
    before = len(figures._CACHE)
    result = figures.fig4(scale="tiny", seed=7)
    assert len(figures._CACHE) == before  # no new simulations
    assert {row["class"] for row in result.rows} == {"short", "long"}


def test_run_figure_by_name_and_unknown():
    assert figures.run_figure("fig2").figure == "fig2"
    with pytest.raises(ValueError):
        figures.run_figure("fig99")


def test_all_figures_registry_complete():
    expected = {
        "fig2", "fig3", "fig4", "fig5a", "fig5b", "fig5c", "fig5d", "fig5e",
        "fig5f", "fig6", "fig7", "fig8", "fig9a", "fig9b", "fig9c", "fig9d",
        "fig10", "fig11", "figR", "figT",
    }
    assert set(figures.ALL_FIGURES) == expected


def test_render_produces_aligned_table():
    result = FigureResult(
        figure="figX", title="demo", columns=["a", "b"],
        rows=[{"a": 1, "b": 2.5}, {"a": 30, "b": None}],
        notes=["hello"],
    )
    text = render(result)
    lines = text.splitlines()
    assert lines[0].startswith("== figX")
    assert "note: hello" in text
    assert "2.500" in text and "-" in lines[-2]


def test_fmt_edge_cases():
    assert fmt(None) == "-"
    assert fmt(True) == "yes"
    assert fmt(float("nan")) == "nan"
    assert fmt(0.0001) == "0.0001"
    assert fmt(123456.0) == "1.23e+05"
    assert fmt(0) == "0"


def test_row_where_raises_for_missing():
    result = FigureResult(figure="f", title="t", columns=["a"], rows=[{"a": 1}])
    assert result.row_where(a=1) == {"a": 1}
    with pytest.raises(KeyError):
        result.row_where(a=2)


def test_cli_list_and_run(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig3" in out and "fig11" in out

    assert main(["--run", "phost", "imc10", "--scale", "tiny", "--flows", "40"]) == 0
    out = capsys.readouterr().out
    assert "slowdown=" in out


def test_cli_figure_regeneration(capsys):
    assert main(["--figure", "fig2", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "== fig2" in out and "regenerated" in out


def test_cli_without_arguments_shows_help(capsys):
    assert main([]) == 2
