"""Tests for experiment specs and scale presets."""

from __future__ import annotations

import pytest

from repro.experiments.defaults import SCALES, make_spec
from repro.experiments.spec import ExperimentSpec
from repro.net.topology import TopologyConfig


def test_spec_defaults_match_paper_config():
    spec = ExperimentSpec()
    assert spec.protocol == "phost"
    assert spec.load == 0.6
    assert spec.traffic_matrix == "all_to_all"
    assert spec.topology.n_hosts == 144
    assert spec.topology.buffer_bytes == 36_000


def test_spec_validation():
    with pytest.raises(ValueError):
        ExperimentSpec(load=0)
    with pytest.raises(ValueError):
        ExperimentSpec(n_flows=0)
    with pytest.raises(ValueError):
        ExperimentSpec(traffic_matrix="mesh")
    with pytest.raises(ValueError):
        ExperimentSpec(tenant_split=1.5)


def test_buffer_override_applies():
    spec = ExperimentSpec(buffer_bytes=6000)
    assert spec.with_topology_buffer().buffer_bytes == 6000
    assert spec.topology.buffer_bytes == 36_000  # original untouched


def test_variant_copies_with_changes():
    spec = ExperimentSpec(load=0.6)
    v = spec.variant(load=0.8, protocol="pfabric")
    assert (v.load, v.protocol) == (0.8, "pfabric")
    assert spec.load == 0.6


def test_scale_presets_exist():
    assert set(SCALES) == {"tiny", "bench", "full"}
    assert SCALES["tiny"].topology.n_hosts < SCALES["bench"].topology.n_hosts
    assert SCALES["bench"].topology.n_hosts == 144


def test_make_spec_applies_preset_and_overrides():
    spec = make_spec("pfabric", "websearch", "tiny", load=0.8, seed=9)
    assert spec.protocol == "pfabric"
    assert spec.load == 0.8
    assert spec.seed == 9
    assert spec.n_flows == SCALES["tiny"].flows_for("websearch")
    assert spec.max_flow_bytes == SCALES["tiny"].truncate_for("websearch")


def test_make_spec_unknown_scale():
    with pytest.raises(ValueError):
        make_spec("phost", "imc10", "huge")
