"""Integration tests for the experiment runner and special drivers."""

from __future__ import annotations

import pytest

from repro.protocols.phost.config import PHostConfig
from repro.experiments.runner import (
    run_experiment,
    run_incast,
    run_tenant_fairness,
)
from repro.experiments.spec import ExperimentSpec
from repro.net.topology import TopologyConfig

TINY = dict(topology=TopologyConfig.small(), max_flow_bytes=100_000, n_flows=80)


@pytest.mark.parametrize("protocol", ["phost", "pfabric", "fastpass"])
def test_each_protocol_completes_all_flows(protocol):
    spec = ExperimentSpec(protocol=protocol, workload="imc10", seed=2, **TINY)
    result = run_experiment(spec)
    assert result.n_completed == result.n_flows
    assert result.completion_rate == 1.0
    assert result.mean_slowdown() >= 1.0 - 1e-9
    assert all(r.slowdown is None or r.slowdown >= 1.0 - 1e-9 for r in result.records)


def test_runs_are_deterministic_given_seed():
    spec = ExperimentSpec(protocol="phost", workload="datamining", seed=11, **TINY)
    a = run_experiment(spec)
    b = run_experiment(spec)
    assert [(r.fid, r.finish) for r in a.records] == [(r.fid, r.finish) for r in b.records]
    assert a.drops.by_hop == b.drops.by_hop


def test_different_seeds_differ():
    base = ExperimentSpec(protocol="phost", workload="datamining", **TINY)
    a = run_experiment(base.variant(seed=1))
    b = run_experiment(base.variant(seed=2))
    assert [r.finish for r in a.records] != [r.finish for r in b.records]


def test_unknown_protocol_and_workload_rejected():
    with pytest.raises(ValueError):
        run_experiment(ExperimentSpec(protocol="tcp-reno", **TINY))
    with pytest.raises(ValueError):
        run_experiment(ExperimentSpec(workload="cachefollower", **TINY))


def test_bimodal_and_fixed_workloads_run():
    spec = ExperimentSpec(
        protocol="phost", workload="bimodal", bimodal_fraction_short=0.9,
        topology=TopologyConfig.small(), n_flows=50, seed=3,
    )
    result = run_experiment(spec)
    assert result.completion_rate == 1.0
    spec = ExperimentSpec(
        protocol="phost", workload="fixed:2920",
        topology=TopologyConfig.small(), n_flows=30, seed=3,
    )
    result = run_experiment(spec)
    assert all(r.size_bytes == 2920 for r in result.records)


def test_permutation_tm_runs():
    spec = ExperimentSpec(
        protocol="phost", workload="imc10", traffic_matrix="permutation",
        seed=4, **TINY,
    )
    result = run_experiment(spec)
    assert result.completion_rate == 1.0
    # all flows of one source go to one destination
    by_src = {}
    for r in result.records:
        by_src.setdefault(r.src, set()).add(r.dst)
    assert all(len(dsts) == 1 for dsts in by_src.values())


def test_deadline_assignment_plumbs_through():
    spec = ExperimentSpec(
        protocol="phost", workload="imc10", with_deadlines=True, seed=5, **TINY,
    )
    result = run_experiment(spec)
    assert all(r.deadline is not None for r in result.records)
    assert 0.0 <= result.deadline_met_fraction() <= 1.0


def test_stability_sampling_collects_series():
    spec = ExperimentSpec(
        protocol="phost", workload="imc10", stability_samples=8, seed=6, **TINY,
    )
    result = run_experiment(spec)
    assert len(result.stability) >= 8
    assert result.stability[-1].frac_arrived == pytest.approx(1.0)


def test_time_guard_halts_overloaded_run():
    spec = ExperimentSpec(
        protocol="pfabric", workload="imc10", load=4.0, seed=7,
        time_guard_factor=1.05, **TINY,
    )
    result = run_experiment(spec)
    assert result.n_completed < result.n_flows  # guard fired, no deadlock


def test_incast_driver_closed_loop():
    result = run_incast(
        "phost", n_senders=4, total_bytes=400_000, n_requests=3,
        topology=TopologyConfig.small(), seed=8,
    )
    assert len(result.rcts) == 3
    assert len(result.fcts) == 12
    assert result.mean_rct >= result.mean_fct > 0
    # RCT lower bound: receiver link must carry all bytes of a request
    assert result.mean_rct >= 400_000 * 8 / 10e9


def test_tenant_fairness_driver_shares_sum_to_one():
    result = run_tenant_fairness(
        "phost",
        {0: "imc10", 1: "websearch"},
        bytes_per_tenant=3_000_000,
        topology=TopologyConfig.small(),
        max_flow_bytes=200_000,
        protocol_config=PHostConfig.tenant_fair(),
        seed=9,
    )
    assert sum(result.shares.values()) == pytest.approx(1.0)
    assert set(result.drain_time) == {0, 1}
    assert all(v > 0 for v in result.throughput_bps.values())
