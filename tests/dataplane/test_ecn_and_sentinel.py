"""DCTCP ECN program behaviour + the shared no-drop sentinel contract."""

from __future__ import annotations

import pytest

from repro.dataplane import DctcpEcnProgram, ProgramQueue
from repro.net.packet import Flow, Packet, PacketType
from repro.net.queues import _NO_DROP, PriorityQueue


def data_pkt(size=1500, priority=1):
    return Packet(PacketType.DATA, None, 0, 0, 1, size, priority=priority)


def ack_pkt():
    return Packet(PacketType.ACK, None, 0, 1, 0, 40, priority=0)


# ----------------------------------------------------------------------
# ECN marking
# ----------------------------------------------------------------------

def test_marks_data_at_or_above_threshold():
    q = ProgramQueue(DctcpEcnProgram(mark_threshold_bytes=3000), 100_000)
    first, second, third = data_pkt(), data_pkt(), data_pkt()
    q.push(first)   # occupancy 0 before push: unmarked
    q.push(second)  # occupancy 1500: unmarked
    q.push(third)   # occupancy 3000 >= K: marked
    assert (first.ecn, second.ecn, third.ecn) == (0, 0, 1)
    assert q.state.marked == 1


def test_marking_observes_occupancy_excluding_the_arrival():
    """The meter runs before the provisional append: a packet whose own
    size would cross the threshold is not marked."""
    q = ProgramQueue(DctcpEcnProgram(mark_threshold_bytes=1000), 100_000)
    pkt = data_pkt(1500)
    q.push(pkt)
    assert pkt.ecn == 0


def test_acks_never_marked():
    q = ProgramQueue(DctcpEcnProgram(mark_threshold_bytes=0), 100_000)
    ack = ack_pkt()
    q.push(data_pkt())
    q.push(ack)
    assert ack.ecn == 0
    assert q.state.marked == 1  # only the data packet


def test_marked_packets_are_not_dropped():
    """Marking and dropping are independent ledger columns."""
    q = ProgramQueue(DctcpEcnProgram(mark_threshold_bytes=0), 100_000)
    pkt = data_pkt()
    assert q.push(pkt) == []
    assert pkt.ecn == 1
    assert q.state.marked == 1
    assert q.state.dropped_incoming == 0
    assert q.pop() is pkt


def test_evicts_lowest_priority_class_protecting_acks():
    """Per-class drop: a full buffer sheds the newest data packet, not
    an arriving high-priority ACK."""
    q = ProgramQueue(DctcpEcnProgram(), 3000)
    q.push(data_pkt())
    q.push(data_pkt())
    ack = ack_pkt()
    dropped = q.push(ack)
    assert ack not in dropped
    assert len(dropped) == 1 and dropped[0].ptype == PacketType.DATA
    assert q.pop() is ack  # and it schedules first (band 0)


def test_data_only_overflow_degenerates_to_drop_tail():
    q = ProgramQueue(DctcpEcnProgram(), 3000)
    q.push(data_pkt())
    q.push(data_pkt())
    incoming = data_pkt()
    assert q.push(incoming) == [incoming]
    assert q.state.dropped_incoming == 1
    assert q.state.evicted == 0


def test_threshold_and_band_validation():
    with pytest.raises(ValueError):
        DctcpEcnProgram(mark_threshold_bytes=-1)
    with pytest.raises(ValueError):
        DctcpEcnProgram(n_bands=0)


# ----------------------------------------------------------------------
# The shared _NO_DROP sentinel is read-only
# ----------------------------------------------------------------------

def test_no_drop_sentinel_compares_as_empty_list():
    q = PriorityQueue(100_000)
    assert q.push(data_pkt()) == []


@pytest.mark.parametrize(
    "mutate",
    [
        lambda s: s.append(1),
        lambda s: s.extend([1]),
        lambda s: s.insert(0, 1),
        lambda s: s.pop(),
        lambda s: s.remove(1),
        lambda s: s.clear(),
        lambda s: s.sort(),
        lambda s: s.reverse(),
        lambda s: s.__setitem__(0, 1),
        lambda s: s.__delitem__(0),
        lambda s: s.__iadd__([1]),
        lambda s: s.__imul__(2),
    ],
    ids=[
        "append", "extend", "insert", "pop", "remove", "clear",
        "sort", "reverse", "setitem", "delitem", "iadd", "imul",
    ],
)
def test_no_drop_sentinel_refuses_mutation(mutate):
    with pytest.raises(TypeError, match="read-only"):
        mutate(_NO_DROP)
    assert _NO_DROP == []  # still pristine for every other caller


def test_mutating_caller_is_caught_not_corrupting():
    """The regression this guards: a caller that appends to the empty
    push() result would silently poison every later no-drop return.
    Now it raises at the offending call site instead."""
    q = PriorityQueue(100_000)
    result = q.push(data_pkt())
    with pytest.raises(TypeError):
        result.append(data_pkt())
    # a fresh push still reports no drops
    assert q.push(data_pkt()) == []
