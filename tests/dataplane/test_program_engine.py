"""Unit tests for the match-action dataplane engine.

Two kinds of coverage:

* **reference equivalence at the edges** — the queue edge cases
  (zero-byte budget, exact fit, eviction ties, starvation avoidance)
  run against both the hand-written queue class and the generic
  :class:`ProgramQueue` executing the matching reference program, so
  the two implementations cannot drift apart on the corners;
* **engine properties** — the per-stage ledgers the auditors reconcile,
  and the registry plumbing.
"""

from __future__ import annotations

import pytest

from repro.dataplane import (
    CommodityProgram,
    DataplaneProgram,
    PFabricProgram,
    ProgramQueue,
    available_dataplanes,
    get_dataplane,
    register_dataplane,
)
from repro.net.packet import Flow, Packet, PacketType
from repro.net.queues import PFabricQueue, PriorityQueue


def make_pkt(size=1500, priority=1, remaining=0, flow=None, seq=0):
    pkt = Packet(PacketType.DATA, flow, seq, 0, 1, size, priority=priority)
    pkt.remaining = remaining
    return pkt


def commodity_queue(kind, capacity):
    if kind == "class":
        return PriorityQueue(capacity)
    return ProgramQueue(CommodityProgram(), capacity)


def pfabric_queue(kind, capacity):
    if kind == "class":
        return PFabricQueue(capacity)
    return ProgramQueue(PFabricProgram(), capacity)


# ----------------------------------------------------------------------
# Edge cases, both implementations
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kind", ["class", "program"])
@pytest.mark.parametrize("make_queue", [commodity_queue, pfabric_queue])
def test_zero_byte_budget_drops_everything(kind, make_queue):
    q = make_queue(kind, 0)
    pkt = make_pkt(40)
    assert q.push(pkt) == [pkt]
    assert len(q) == 0
    assert q.bytes_queued == 0
    assert q.pop() is None


@pytest.mark.parametrize("kind", ["class", "program"])
@pytest.mark.parametrize("make_queue", [commodity_queue, pfabric_queue])
def test_exact_fit_push_is_admitted(kind, make_queue):
    """A packet that lands occupancy exactly on the budget is kept;
    one more byte would overflow."""
    q = make_queue(kind, 3000)
    assert q.push(make_pkt(1500)) == []
    assert q.push(make_pkt(1500)) == []  # exactly at capacity
    assert q.bytes_queued == 3000
    extra = make_pkt(40)
    assert extra in q.push(extra)  # even 40B over budget must drop
    assert q.bytes_queued == 3000


@pytest.mark.parametrize("kind", ["class", "program"])
def test_pfabric_eviction_tie_on_equal_remaining_drops_newest(kind):
    """Urgency ties break on arrival stamp: the newest (the incoming
    packet) is the victim, buffered packets survive."""
    q = pfabric_queue(kind, 3000)
    first = make_pkt(1500, remaining=5)
    second = make_pkt(1500, remaining=5)
    q.push(first)
    q.push(second)
    third = make_pkt(1500, remaining=5)
    assert q.push(third) == [third]
    assert len(q) == 2


@pytest.mark.parametrize("kind", ["class", "program"])
def test_pfabric_starvation_avoidance_sends_oldest_of_best_flow(kind):
    """The most urgent packet selects the *flow*; the flow's earliest
    queued packet is transmitted (pHost paper, footnote 1)."""
    q = pfabric_queue(kind, 100_000)
    flow = Flow(1, 0, 1, 100_000, 0.0)
    older = make_pkt(remaining=9, flow=flow, seq=0)
    newer = make_pkt(remaining=2, flow=flow, seq=7)
    other = make_pkt(remaining=5, flow=Flow(2, 0, 1, 100_000, 0.0), seq=0)
    q.push(older)
    q.push(other)
    q.push(newer)
    assert q.pop() is older


@pytest.mark.parametrize("kind", ["class", "program"])
def test_commodity_strict_priority_and_fifo(kind):
    q = commodity_queue(kind, 100_000)
    low = make_pkt(priority=3)
    mid_a = make_pkt(priority=1)
    mid_b = make_pkt(priority=1)
    q.push(low)
    q.push(mid_a)
    q.push(mid_b)
    assert q.pop() is mid_a
    assert q.pop() is mid_b
    assert q.pop() is low
    assert q.pop() is None


@pytest.mark.parametrize("kind", ["class", "program"])
def test_commodity_clamps_out_of_range_bands(kind):
    q = commodity_queue(kind, 100_000)
    q.push(make_pkt(priority=-3))
    q.push(make_pkt(priority=99))
    assert len(q) == 2
    assert q.pop().priority == -3  # clamped into band 0 (highest)


# ----------------------------------------------------------------------
# Engine stage ledgers
# ----------------------------------------------------------------------

def test_engine_stage_ledgers_balance():
    q = ProgramQueue(CommodityProgram(), 3000)
    kept_a, kept_b, refused = make_pkt(1500), make_pkt(1500), make_pkt(1500)
    q.push(kept_a)
    q.push(kept_b)
    q.push(refused)  # drop-tail: incoming refused
    q.pop()
    st = q.state
    assert st.classified == 3
    assert st.admitted == 2
    assert st.dropped_incoming == 1
    assert st.evicted == 0
    assert st.scheduled == 1
    assert st.classified == st.admitted + st.dropped_incoming
    assert st.admitted == st.scheduled + len(q) + st.evicted


def test_engine_eviction_ledger_counts_displaced_buffered_packets():
    q = ProgramQueue(PFabricProgram(), 3000)
    q.push(make_pkt(1500, remaining=1))
    bulk = make_pkt(1500, remaining=500)
    q.push(bulk)
    assert q.push(make_pkt(1500, remaining=10)) == [bulk]
    st = q.state
    assert st.admitted == 3       # all three entered the buffer
    assert st.evicted == 1        # the bulk packet was displaced
    assert st.dropped_incoming == 0
    assert st.admitted == st.scheduled + len(q) + st.evicted


def test_engine_peek_matches_pop_without_removal():
    q = ProgramQueue(CommodityProgram(), 100_000)
    a, b = make_pkt(priority=2), make_pkt(priority=0)
    q.push(a)
    q.push(b)
    assert q.peek() is b
    assert len(q) == 2
    assert q.pop() is b


def test_meter_mark_counts_without_dropping():
    class MarkAll(DataplaneProgram):
        name = "mark-all-test"

        def meter(self, pkt, q):
            return True

    q = ProgramQueue(MarkAll(), 100_000)
    q.push(make_pkt())
    q.push(make_pkt())
    assert q.state.marked == 2
    assert q.state.admitted == 2  # marking never removes a packet
    assert q.state.marked <= q.state.classified


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_builtin_programs_registered():
    names = available_dataplanes()
    for expected in ("commodity", "pfabric", "dctcp"):
        assert expected in names


def test_unknown_dataplane_is_a_clear_error():
    with pytest.raises(ValueError, match="unknown dataplane"):
        get_dataplane("no-such-program")


def test_external_registration_round_trips():
    class Custom(DataplaneProgram):
        name = "custom-test-program"

    program = Custom()
    register_dataplane(program)
    assert get_dataplane("custom-test-program") is program
    assert "custom-test-program" in available_dataplanes()


def test_reference_programs_compile_to_fused_queues():
    commodity = get_dataplane("commodity")
    pfabric = get_dataplane("pfabric")
    dctcp = get_dataplane("dctcp")
    assert isinstance(commodity.make_queue(1000, fused=True), PriorityQueue)
    assert isinstance(pfabric.make_queue(1000, fused=True), PFabricQueue)
    # no fused specialization for the plug-in: always the generic engine
    assert isinstance(dctcp.make_queue(1000, fused=True), ProgramQueue)
    assert isinstance(commodity.make_queue(1000, fused=False), ProgramQueue)
    assert isinstance(pfabric.make_queue(1000, fused=False), ProgramQueue)
