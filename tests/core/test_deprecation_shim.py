"""The `repro.core` deprecation shim.

pHost moved to `repro.protocols.phost`; the old package must keep
resolving — same objects, one DeprecationWarning per import — until the
shim is removed.
"""

from __future__ import annotations

import sys
import warnings

import pytest


def _fresh_import_core():
    """Import repro.core as if for the first time, capturing warnings."""
    stale = [m for m in sys.modules if m == "repro.core" or m.startswith("repro.core.")]
    for name in stale:
        del sys.modules[name]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        import repro.core  # noqa: F401
    return sys.modules["repro.core"], caught


def test_import_warns_exactly_once_and_points_at_new_home():
    _core, caught = _fresh_import_core()
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "repro.protocols.phost" in str(deprecations[0].message)


def test_old_top_level_names_resolve_to_canonical_objects():
    core, _ = _fresh_import_core()
    import repro.protocols.phost as phost

    assert core.PHostAgent is phost.PHostAgent
    assert core.PHostConfig is phost.PHostConfig
    assert core.PHOST_SPEC is phost.PHOST_SPEC
    assert core.make_policy is phost.make_policy


def test_from_import_still_works():
    _fresh_import_core()
    from repro.core import PHostAgent, PHostConfig  # noqa: F401

    assert PHostConfig.paper_default().free_tokens == 8


@pytest.mark.parametrize(
    "submodule", ["agent", "config", "destination", "policies", "source", "tokens"]
)
def test_old_submodules_alias_the_canonical_modules(submodule):
    _fresh_import_core()
    import importlib

    old = importlib.import_module(f"repro.core.{submodule}")
    new = importlib.import_module(f"repro.protocols.phost.{submodule}")
    assert old is new


@pytest.mark.parametrize(
    "submodule", ["agent", "config", "destination", "policies", "source", "tokens"]
)
def test_every_public_name_is_identity_shared(submodule):
    """Not just the module objects: every public attribute reachable via
    the old path must be the *same object* as the canonical one, so
    isinstance checks, registries and monkeypatches cannot fork between
    the two import spellings."""
    _fresh_import_core()
    import importlib

    old = importlib.import_module(f"repro.core.{submodule}")
    new = importlib.import_module(f"repro.protocols.phost.{submodule}")
    names = getattr(new, "__all__", None) or [
        n for n in dir(new) if not n.startswith("_")
    ]
    assert names, f"no public names found in {submodule}"
    for name in names:
        assert getattr(old, name) is getattr(new, name), (
            f"repro.core.{submodule}.{name} is not the canonical object"
        )


def test_protocol_registry_serves_the_shim_visible_spec():
    """get_protocol('phost') — what build_simulation actually uses —
    must hand back the very spec the shim re-exports, so protocol
    behaviour cannot fork depending on import path."""
    core, _ = _fresh_import_core()
    from repro.protocols.registry import get_protocol

    assert get_protocol("phost") is core.PHOST_SPEC


def test_shim_shares_registries_with_canonical_package():
    """Policy registration through the old path is visible on the new
    one — the shim aliases modules instead of duplicating them."""
    _fresh_import_core()
    from repro.core.policies import _POLICIES as old_registry
    from repro.protocols.phost.policies import _POLICIES as new_registry

    assert old_registry is new_registry
