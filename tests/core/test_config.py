"""Unit tests for PHostConfig."""

from __future__ import annotations

import pytest

from repro.protocols.phost.config import PHostConfig
from repro.net.topology import TopologyConfig


def test_paper_defaults():
    cfg = PHostConfig.paper_default()
    assert cfg.free_tokens == 8
    assert cfg.token_expiry_mtus == 1.5
    assert cfg.downgrade_threshold == 8      # "a BDP worth of tokens"
    assert cfg.downgrade_mtus == 8.0
    assert cfg.retx_timeout_mtus == 24.0


def test_resolve_binds_paper_times():
    topo = TopologyConfig.paper()
    cfg = PHostConfig.paper_default().resolve(topo)
    mtu = topo.mtu_tx_time
    assert mtu == pytest.approx(1.2e-6)
    assert cfg.token_interval == pytest.approx(mtu)
    assert cfg.token_expiry == pytest.approx(1.5 * mtu)
    assert cfg.downgrade_time == pytest.approx(8 * mtu)
    assert cfg.retx_timeout == pytest.approx(24 * mtu)


def test_resolve_is_nondestructive():
    cfg = PHostConfig()
    resolved = cfg.resolve(TopologyConfig.paper())
    assert cfg.token_expiry == 0.0
    assert resolved is not cfg


def test_token_rate_factor_scales_interval():
    cfg = PHostConfig(token_rate_factor=2.0).resolve(TopologyConfig.paper())
    assert cfg.token_interval == pytest.approx(0.6e-6)


def test_short_threshold_defaults_to_free_tokens():
    assert PHostConfig(free_tokens=8).short_threshold_pkts == 8
    assert PHostConfig(free_tokens=0).short_threshold_pkts == 1
    assert PHostConfig(short_flow_pkts=30).short_threshold_pkts == 30


def test_tenant_fair_preset():
    cfg = PHostConfig.tenant_fair()
    assert cfg.grant_policy == "tenant_fair"
    assert cfg.spend_policy == "tenant_fair"
    assert cfg.uniform_data_priority
    assert cfg.free_tokens == 0


def test_deadline_preset_uses_edf():
    cfg = PHostConfig.deadline()
    assert cfg.grant_policy == "edf"
    assert cfg.spend_policy == "edf"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"free_tokens": -1},
        {"token_expiry_mtus": 0},
        {"downgrade_threshold": 0},
        {"retx_timeout_mtus": -1},
        {"token_rate_factor": 0},
    ],
)
def test_validation_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        PHostConfig(**kwargs)


def test_priority_policy_validation():
    with pytest.raises(ValueError):
        PHostConfig(priority_policy="random")
    assert PHostConfig(priority_policy="deadline").priority_policy == "deadline"
