"""Unit tests for pHost scheduling policies."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.protocols.phost.policies import (
    EDFPolicy,
    FIFOPolicy,
    SRPTPolicy,
    TenantCounters,
    TenantFairPolicy,
    available_policies,
    make_policy,
)
from repro.net.packet import Flow


class FakeState:
    """Minimal candidate: a flow plus a remaining-packet hint."""

    def __init__(self, fid, remaining, arrival=0.0, deadline=None, tenant=0):
        self.flow = Flow(fid, 0, 1, 1460, arrival, tenant=tenant, deadline=deadline)
        self._remaining = remaining

    def remaining_hint(self):
        return self._remaining


def test_srpt_picks_fewest_remaining():
    policy = SRPTPolicy()
    a = FakeState(1, remaining=10)
    b = FakeState(2, remaining=3)
    c = FakeState(3, remaining=7)
    assert policy.select([a, b, c]) is b


def test_srpt_breaks_ties_by_arrival():
    policy = SRPTPolicy()
    older = FakeState(1, remaining=5, arrival=0.0)
    newer = FakeState(2, remaining=5, arrival=1.0)
    assert policy.select([newer, older]) is older


def test_edf_prefers_earliest_deadline():
    policy = EDFPolicy()
    late = FakeState(1, remaining=1, deadline=2.0)
    soon = FakeState(2, remaining=99, deadline=1.0)
    assert policy.select([late, soon]) is soon


def test_edf_sorts_deadline_less_flows_last():
    policy = EDFPolicy()
    none = FakeState(1, remaining=1, deadline=None)
    some = FakeState(2, remaining=99, deadline=5.0)
    assert policy.select([none, some]) is some


def test_fifo_picks_oldest():
    policy = FIFOPolicy()
    a = FakeState(1, remaining=1, arrival=2.0)
    b = FakeState(2, remaining=9, arrival=1.0)
    assert policy.select([a, b]) is b


def test_tenant_fair_prefers_starved_tenant():
    policy = TenantFairPolicy()
    counters = TenantCounters()
    counters.add(0, 100)   # tenant 0 has been served a lot
    counters.add(1, 3)
    t0 = FakeState(1, remaining=1, tenant=0)
    t1 = FakeState(2, remaining=50, tenant=1)
    assert policy.select([t0, t1], counters) is t1


def test_tenant_fair_srpt_within_tenant():
    policy = TenantFairPolicy()
    counters = TenantCounters()
    a = FakeState(1, remaining=9, tenant=0)
    b = FakeState(2, remaining=2, tenant=0)
    assert policy.select([a, b], counters) is b


def test_tenant_fair_without_counters_degrades_gracefully():
    policy = TenantFairPolicy()
    a = FakeState(1, remaining=9, tenant=0)
    b = FakeState(2, remaining=2, tenant=1)
    assert policy.select([a, b], None) is b


def test_select_empty_returns_none():
    assert SRPTPolicy().select([]) is None


def test_make_policy_registry():
    assert set(available_policies()) == {"srpt", "edf", "fifo", "tenant_fair"}
    assert isinstance(make_policy("srpt"), SRPTPolicy)
    with pytest.raises(ValueError):
        make_policy("wfq")


@given(
    st.lists(
        st.tuples(st.integers(1, 1000), st.floats(0, 10)),
        min_size=1,
        max_size=30,
        unique_by=lambda t: t,
    )
)
def test_property_srpt_selection_minimizes_key(entries):
    policy = SRPTPolicy()
    states = [FakeState(i, remaining=r, arrival=a) for i, (r, a) in enumerate(entries)]
    chosen = policy.select(states)
    assert chosen.remaining_hint() == min(s.remaining_hint() for s in states)
