"""Unit tests for source-side token bookkeeping."""

from __future__ import annotations

import pytest

from repro.protocols.phost.tokens import SourceFlowState, Token
from repro.net.packet import Flow


def make_state(n_bytes=14600, free=8):
    return SourceFlowState(Flow(1, 0, 1, n_bytes, 0.0), free)


def test_free_budget_capped_at_flow_size():
    state = SourceFlowState(Flow(1, 0, 1, 1460 * 2, 0.0), 8)
    assert state.free_left == 2


def test_free_seqs_issued_in_order():
    state = make_state(free=3)
    assert [state.take_free_seq() for _ in range(3)] == [0, 1, 2]
    assert not state.has_free_token()
    with pytest.raises(RuntimeError):
        state.take_free_seq()


def test_free_path_skips_seqs_already_sent_via_regrant():
    state = make_state(free=3)
    state.sent.add(0)  # sent via a re-granted token
    assert state.take_free_seq() == 1
    # the entitlement for seq 0 was consumed by the skip
    assert state.free_left == 1


def test_token_expiry_pruning():
    state = make_state()
    state.add_token(Token(8, 1, expiry=1.0))
    state.add_token(Token(9, 1, expiry=3.0))
    assert state.prune_expired(2.0) == 1
    assert [t.seq for t in state.tokens] == [9]
    assert state.has_granted_token(2.5)
    assert not state.has_granted_token(4.0)


def test_tokens_spent_in_receipt_order():
    state = make_state()
    state.add_token(Token(8, 1, expiry=10.0))
    state.add_token(Token(9, 1, expiry=10.0))
    assert state.pop_token().seq == 8
    assert state.pop_token().seq == 9


def test_has_any_token_covers_both_kinds():
    state = make_state(free=1)
    assert state.has_any_token(0.0)       # free budget
    state.take_free_seq()
    assert not state.has_any_token(0.0)
    state.add_token(Token(5, 1, expiry=1.0))
    assert state.has_any_token(0.5)
    assert not state.has_any_token(2.0)   # expired


def test_remaining_hint_counts_unsent():
    state = make_state(n_bytes=1460 * 10)
    assert state.remaining_hint() == 10
    state.sent.update({0, 1, 2})
    assert state.remaining_hint() == 7
    assert not state.all_sent()
    state.sent.update(range(10))
    assert state.all_sent()


def test_got_token_flag():
    state = make_state()
    assert not state.got_token
    state.add_token(Token(8, 1, expiry=1.0))
    assert state.got_token
