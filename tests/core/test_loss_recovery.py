"""Fault-injection tests: pHost must survive losing any packet type.

These wrap a host's ``on_packet`` to swallow specific control or data
packets and assert the timeout machinery (§3.2/§3.4) still completes
every flow.  Each scenario kills a different recovery path:

* lost RTS        -> implicit-RTS from data, or source RTS retry
* lost TOKEN      -> destination re-issues expired grants
* lost ACK        -> source ACK-check re-pokes the destination
* lost DATA burst -> destination re-grants the missing packets
"""

from __future__ import annotations

import pytest

from repro.protocols.phost.config import PHostConfig
from repro.experiments.runner import build_simulation
from repro.experiments.spec import ExperimentSpec
from repro.net.packet import Flow, PacketType
from repro.net.topology import TopologyConfig


def phost_sim(config=None, seed=1):
    spec = ExperimentSpec(
        protocol="phost",
        workload="fixed:1460",
        n_flows=1,
        topology=TopologyConfig.small(),
        protocol_config=config,
        seed=seed,
    )
    ctx = build_simulation(spec)
    return ctx.env, ctx.fabric, ctx.collector, ctx.config


def swallow(agent, predicate, budget=1):
    """Drop up to ``budget`` packets matching predicate at ``agent``."""
    original = agent.on_packet
    state = {"left": budget, "eaten": 0}

    def lossy(pkt):
        if state["left"] > 0 and predicate(pkt):
            state["left"] -= 1
            state["eaten"] += 1
            return
        original(pkt)

    agent.on_packet = lossy
    return state


def start(env, fabric, collector, flow):
    collector.expected_flows = (collector.expected_flows or 0) + 1
    env.schedule_at(flow.arrival, fabric.hosts[flow.src].agent.start_flow, flow)


def test_lost_rts_with_free_tokens_is_invisible():
    env, fabric, collector, cfg = phost_sim()
    dst = 5
    eaten = swallow(fabric.hosts[dst].agent, lambda p: p.ptype == PacketType.RTS)
    flow = Flow(1, 0, dst, 4 * 1460, 0.0)
    start(env, fabric, collector, flow)
    env.run(until=0.02)
    assert eaten["eaten"] == 1
    assert flow.completed
    # recovery came from the implicit-RTS path, well before any timeout
    assert flow.finish - flow.arrival < cfg.retx_timeout


def test_lost_rts_without_free_tokens_recovers_via_retry():
    env, fabric, collector, cfg = phost_sim(config=PHostConfig(free_tokens=0))
    dst = 5
    eaten = swallow(fabric.hosts[dst].agent, lambda p: p.ptype == PacketType.RTS)
    flow = Flow(1, 0, dst, 4 * 1460, 0.0)
    start(env, fabric, collector, flow)
    env.run(until=0.05)
    assert eaten["eaten"] == 1
    assert flow.completed
    # the source had to wait out at least one RTS-retry interval
    assert flow.finish - flow.arrival >= cfg.rts_retry
    assert fabric.hosts[0].agent.source.active_flow_count == 0


def test_lost_token_regranted():
    env, fabric, collector, cfg = phost_sim()
    dst = 5
    # swallow the first destination-granted token at the source
    eaten = swallow(
        fabric.hosts[0].agent,
        lambda p: p.ptype == PacketType.TOKEN,
    )
    flow = Flow(1, 0, dst, 30 * 1460, 0.0)  # needs grants beyond free budget
    start(env, fabric, collector, flow)
    env.run(until=0.05)
    assert eaten["eaten"] == 1
    assert flow.completed


def test_lost_ack_resolved_by_ack_check():
    env, fabric, collector, cfg = phost_sim()
    dst = 5
    eaten = swallow(fabric.hosts[0].agent, lambda p: p.ptype == PacketType.ACK)
    flow = Flow(1, 0, dst, 3 * 1460, 0.0)
    start(env, fabric, collector, flow)
    env.run(until=0.1)
    assert eaten["eaten"] == 1
    # destination completed the flow despite the lost ACK...
    assert flow.completed
    # ...and the source eventually cleaned up its state via re-RTS/re-ACK
    assert fabric.hosts[0].agent.source.active_flow_count == 0


def test_lost_data_burst_regranted():
    env, fabric, collector, cfg = phost_sim()
    dst = 5
    eaten = swallow(
        fabric.hosts[dst].agent,
        lambda p: p.ptype == PacketType.DATA and p.seq in (2, 3, 4),
        budget=3,
    )
    flow = Flow(1, 0, dst, 10 * 1460, 0.0)
    start(env, fabric, collector, flow)
    env.run(until=0.1)
    assert eaten["eaten"] == 3
    assert flow.completed
    assert collector.data_pkts_retransmitted >= 3


@pytest.mark.parametrize("loss_every", [7, 13])
def test_sustained_random_loss_still_completes(loss_every):
    """Periodic data loss across ALL hosts: every flow still finishes."""
    env, fabric, collector, cfg = phost_sim(seed=5)
    counter = {"n": 0}

    for host in fabric.hosts:
        original = host.agent.on_packet

        def lossy(pkt, original=original):
            if pkt.ptype == PacketType.DATA:
                counter["n"] += 1
                if counter["n"] % loss_every == 0:
                    return  # drop
            original(pkt)

        host.agent.on_packet = lossy

    flows = []
    for i in range(30):
        src = i % 12
        dst = (i * 5 + 3) % 12
        if src == dst:
            dst = (dst + 1) % 12
        flow = Flow(i, src, dst, 1460 * (1 + i % 12), i * 10e-6)
        flows.append(flow)
        start(env, fabric, collector, flow)
    env.run(until=1.0)
    assert all(f.completed for f in flows)
    assert collector.data_pkts_retransmitted > 0
