"""Behavioural tests of the pHost protocol on a real (small) fabric.

These drive individual flows through `build_simulation` wiring and
assert on protocol mechanics: free-token fast start, token-paced long
flows, loss recovery via token re-issue, source downgrading, and ACK
cleanup.
"""

from __future__ import annotations

import pytest

from repro.protocols.phost.agent import PHostAgent
from repro.protocols.phost.config import PHostConfig
from repro.experiments.runner import build_simulation
from repro.experiments.spec import ExperimentSpec
from repro.net.packet import Flow, PacketType
from repro.net.topology import TopologyConfig


def phost_sim(config=None, seed=1):
    spec = ExperimentSpec(
        protocol="phost",
        workload="fixed:1460",
        n_flows=1,
        topology=TopologyConfig.small(),
        protocol_config=config,
        seed=seed,
    )
    ctx = build_simulation(spec)
    env, fabric, collector, cfg = ctx.env, ctx.fabric, ctx.collector, ctx.config
    return env, fabric, collector, cfg


def start(env, fabric, collector, flow):
    collector.expected_flows = (collector.expected_flows or 0) + 1
    env.schedule_at(flow.arrival, fabric.hosts[flow.src].agent.start_flow, flow)


def test_lone_short_flow_finishes_near_opt():
    env, fabric, collector, _ = phost_sim()
    dst = fabric.config.hosts_per_rack  # inter-rack
    flow = Flow(1, 0, dst, 3 * 1460, 0.0)
    start(env, fabric, collector, flow)
    env.run(until=0.01)
    assert flow.completed
    opt = fabric.opt_fct(flow.size_bytes, 0, dst)
    slowdown = (flow.finish - flow.arrival) / opt
    # free tokens let it start immediately; only the RTS serialization
    # (40B) precedes data, so the flow is within a few percent of OPT
    assert 1.0 <= slowdown < 1.1


def test_lone_long_flow_token_paced_to_line_rate():
    env, fabric, collector, cfg = phost_sim()
    dst = fabric.config.hosts_per_rack
    n_pkts = 100
    flow = Flow(1, 0, dst, n_pkts * 1460, 0.0)
    start(env, fabric, collector, flow)
    env.run(until=0.05)
    assert flow.completed
    opt = fabric.opt_fct(flow.size_bytes, 0, dst)
    slowdown = (flow.finish - flow.arrival) / opt
    assert slowdown < 1.15  # token stream keeps the link ~saturated
    dest_agent = fabric.hosts[dst].agent
    # destination explicitly granted everything beyond the free budget
    assert dest_agent.destination.tokens_granted >= n_pkts - cfg.free_tokens


def test_ack_cleans_up_source_state():
    env, fabric, collector, _ = phost_sim()
    flow = Flow(1, 0, 1, 1460, 0.0)
    start(env, fabric, collector, flow)
    env.run(until=0.01)
    src_agent: PHostAgent = fabric.hosts[0].agent
    dst_agent: PHostAgent = fabric.hosts[1].agent
    assert src_agent.source.active_flow_count == 0
    assert dst_agent.destination.pending_flow_count == 0
    assert flow.fid in dst_agent.destination.finished


def test_duplicate_rts_for_finished_flow_reacks():
    env, fabric, collector, _ = phost_sim()
    flow = Flow(1, 0, 1, 1460, 0.0)
    start(env, fabric, collector, flow)
    env.run(until=0.01)
    dst_agent: PHostAgent = fabric.hosts[1].agent
    acks_before = collector.control_pkts_sent
    from repro.net.packet import control_packet

    dst_agent.on_packet(control_packet(PacketType.RTS, flow, 0, 0, 1, env.now))
    assert collector.control_pkts_sent == acks_before + 1  # re-ACK


def test_lost_data_recovered_by_token_reissue():
    """Force-drop one data packet; the destination's timeout re-issues a
    token for exactly that packet and the flow still completes."""
    env, fabric, collector, cfg = phost_sim()
    dst = fabric.config.hosts_per_rack
    flow = Flow(1, 0, dst, 20 * 1460, 0.0)
    dst_agent: PHostAgent = fabric.hosts[dst].agent
    original = dst_agent.destination.on_data
    dropped = {"done": False}

    def lossy(pkt):
        if pkt.seq == 5 and not dropped["done"]:
            dropped["done"] = True
            return  # swallow the packet once
        original(pkt)

    dst_agent.destination.on_data = lossy
    start(env, fabric, collector, flow)
    env.run(until=0.05)
    assert dropped["done"]
    assert flow.completed
    assert collector.data_pkts_retransmitted >= 1


def test_unresponsive_source_gets_downgraded():
    """A source that sits on its tokens must be downgraded after a BDP's
    worth of unresponded tokens (paper §3.2)."""
    env, fabric, collector, cfg = phost_sim()
    dst = fabric.config.hosts_per_rack
    flow = Flow(1, 0, dst, 60 * 1460, 0.0)
    src_agent: PHostAgent = fabric.hosts[0].agent
    # Muzzle the source: it sends RTS and then never spends any token.
    src_agent.source.next_data_packet = lambda: None
    start(env, fabric, collector, flow)
    env.run(until=cfg.retx_timeout * 30)
    dest = fabric.hosts[dst].agent.destination
    state = dest.states[flow.fid]
    assert state.downgrades >= 1
    assert not flow.completed


def test_no_retransmissions_without_drops():
    env, fabric, collector, _ = phost_sim()
    flows = []
    for i in range(10):
        dst = (i + 3) % fabric.config.n_hosts
        src = i % fabric.config.n_hosts
        if src == dst:
            dst = (dst + 1) % fabric.config.n_hosts
        flow = Flow(i, src, dst, 1460 * (i + 1), i * 5e-6)
        flows.append(flow)
        start(env, fabric, collector, flow)
    env.run(until=0.05)
    assert all(f.completed for f in flows)
    assert fabric.drops_total == 0
    assert collector.data_pkts_retransmitted == 0


def test_tenant_fair_config_runs_and_completes():
    env, fabric, collector, _ = phost_sim(config=PHostConfig.tenant_fair())
    flows = [
        Flow(1, 0, 5, 1460 * 20, 0.0, tenant=0),
        Flow(2, 1, 5, 1460 * 20, 0.0, tenant=1),
    ]
    for f in flows:
        start(env, fabric, collector, f)
    env.run(until=0.05)
    assert all(f.completed for f in flows)


def test_edf_config_prioritizes_urgent_flow():
    """Two same-size flows to one receiver; EDF must finish the one with
    the earlier deadline first."""
    env, fabric, collector, _ = phost_sim(config=PHostConfig.deadline())
    urgent = Flow(1, 0, 5, 1460 * 120, 0.0, deadline=1e-3)
    relaxed = Flow(2, 1, 5, 1460 * 120, 0.0, deadline=1.0)
    start(env, fabric, collector, relaxed)
    start(env, fabric, collector, urgent)
    env.run(until=0.05)
    assert urgent.completed and relaxed.completed
    assert urgent.finish < relaxed.finish


def test_data_priority_bands():
    env, fabric, collector, cfg = phost_sim()
    agent: PHostAgent = fabric.hosts[0].agent
    short = Flow(1, 0, 1, 1460 * cfg.short_threshold_pkts, 0.0)
    long_ = Flow(2, 0, 1, 1460 * (cfg.short_threshold_pkts + 1), 0.0)
    assert agent.data_priority(short) == 1
    assert agent.data_priority(long_) == 2


def test_uniform_priority_config_flattens_bands():
    env, fabric, collector, cfg = phost_sim(config=PHostConfig.tenant_fair())
    agent: PHostAgent = fabric.hosts[0].agent
    long_ = Flow(2, 0, 1, 1460 * 100, 0.0)
    assert agent.data_priority(long_) == 1


def test_priority_policy_variants():
    """Degree of freedom 3: how flows map onto priority bands."""
    env, fabric, collector, cfg = phost_sim(
        config=PHostConfig(priority_policy="uniform")
    )
    agent: PHostAgent = fabric.hosts[0].agent
    big = Flow(1, 0, 1, 1460 * 500, 0.0)
    assert agent.data_priority(big) == 1  # uniform: everything band 1

    env, fabric, collector, cfg = phost_sim(
        config=PHostConfig(priority_policy="deadline", grant_policy="edf",
                           spend_policy="edf")
    )
    agent = fabric.hosts[0].agent
    urgent = Flow(2, 0, 1, 1460 * 500, 0.0, deadline=cfg.retx_timeout)
    relaxed = Flow(3, 0, 1, 1460, 0.0, deadline=10.0)
    undated = Flow(4, 0, 1, 1460, 0.0)
    assert agent.data_priority(urgent) == 1
    assert agent.data_priority(relaxed) == 2
    assert agent.data_priority(undated) == 2


def test_deadline_priority_config_completes_flows():
    cfg = PHostConfig(priority_policy="deadline", grant_policy="edf",
                      spend_policy="edf")
    env, fabric, collector, _ = phost_sim(config=cfg)
    flows = [Flow(i, i % 3, 5 + i % 3, 1460 * 10, 0.0, deadline=1e-3)
             for i in range(6)]
    for f in flows:
        start(env, fabric, collector, f)
    env.run(until=0.05)
    assert all(f.completed for f in flows)
