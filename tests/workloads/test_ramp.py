"""Property tests for piecewise load ramps (repro.workloads.ramp)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.randoms import SeededRng
from repro.workloads.ramp import LoadProfile, parse_load_profile

# Strategy: 1-5 valid segments starting at 0 with increasing starts.
segments = st.lists(
    st.tuples(
        st.floats(0.001, 10.0, allow_nan=False),   # gap to next start
        st.floats(0.1, 8.0, allow_nan=False),      # multiplier
    ),
    min_size=1,
    max_size=5,
).map(
    lambda gaps: tuple(
        (round(sum(g for g, _ in gaps[:i]), 9), m)
        for i, (_, m) in enumerate(gaps)
    )
)


def test_validation():
    with pytest.raises(ValueError):
        LoadProfile(())
    with pytest.raises(ValueError):
        LoadProfile(((1.0, 2.0),))  # first start must be 0
    with pytest.raises(ValueError):
        LoadProfile(((0.0, 1.0), (0.0, 2.0)))  # non-increasing starts
    with pytest.raises(ValueError):
        LoadProfile(((0.0, 0.0),))  # non-positive multiplier


def test_multiplier_at_and_mean():
    p = LoadProfile(((0.0, 1.0), (1.0, 4.0), (3.0, 2.0)))
    assert p.multiplier_at(0.0) == 1.0
    assert p.multiplier_at(0.999) == 1.0
    assert p.multiplier_at(1.0) == 4.0
    assert p.multiplier_at(2.5) == 4.0
    assert p.multiplier_at(100.0) == 2.0
    # mean over [0, 4]: 1*1 + 4*2 + 2*1 = 11 over 4 seconds
    assert math.isclose(p.mean_multiplier(4.0), 11.0 / 4.0)
    assert math.isclose(p.mean_multiplier(1.0), 1.0)


def test_burst_and_diurnal_constructors():
    b = LoadProfile.burst(at=0.01, duration=0.02, factor=4.0)
    assert b.segments == ((0.0, 1.0), (0.01, 4.0), (0.03, 1.0))
    assert LoadProfile.burst(at=0.0, duration=0.5, factor=2.0).segments == (
        (0.0, 2.0), (0.5, 1.0),
    )
    d = LoadProfile.diurnal(period=1.0, low=0.5, high=2.0, steps=5)
    assert len(d.segments) == 5
    assert d.segments[0][1] == 0.5          # starts low
    assert max(m for _, m in d.segments) == 2.0  # peaks at high (odd steps)
    assert not d.is_flat and LoadProfile.flat().is_flat
    with pytest.raises(ValueError):
        LoadProfile.burst(at=-1.0, duration=1.0, factor=2.0)
    with pytest.raises(ValueError):
        LoadProfile.diurnal(period=0.0, low=1.0, high=2.0)


@settings(max_examples=50, deadline=None)
@given(segs=segments, seed=st.integers(0, 2**20), base_rate=st.floats(10.0, 1e4))
def test_arrivals_strictly_positive_and_monotone(segs, seed, base_rate):
    """The hazard inversion always advances time and lands inside the
    segment whose rate it finished consuming hazard in."""
    profile = LoadProfile(segs)
    rng = SeededRng(seed).stream("arrivals")
    now = 0.0
    for _ in range(100):
        nxt = profile.next_arrival(now, base_rate, rng)
        assert nxt > now
        now = nxt


def test_flat_profile_matches_homogeneous_draws_exactly():
    """A flat profile must consume the RNG identically to the plain
    ``expovariate(rate)`` path — this is what keeps pre-ramp digests
    byte-identical when profile plumbing is present but unused."""
    rate = 5000.0
    a = SeededRng(3).stream("arrivals")
    b = SeededRng(3).stream("arrivals")
    profile = LoadProfile.flat()
    now_a = now_b = 0.0
    for _ in range(200):
        now_a += a.expovariate(rate)
        now_b = profile.next_arrival(now_b, rate, b)
        assert now_a == pytest.approx(now_b, abs=0.0, rel=1e-15)


@pytest.mark.parametrize(
    "segments_, horizon",
    [
        (((0.0, 1.0), (0.5, 4.0)), 1.0),
        (((0.0, 2.0), (0.3, 0.5), (0.7, 3.0)), 1.0),
    ],
)
def test_empirical_rates_match_profile_per_segment(segments_, horizon):
    """Draw many arrivals and check each segment's empirical rate is
    within tolerance of base_rate * multiplier (satellite: load-ramp
    arrival rates match the piecewise profile)."""
    base_rate = 20_000.0
    profile = LoadProfile(segments_)
    rng = SeededRng(42).stream("arrivals")
    arrivals = []
    now = 0.0
    while now < horizon:
        now = profile.next_arrival(now, base_rate, rng)
        arrivals.append(now)
    for i, (start, mult) in enumerate(profile.segments):
        end = (
            profile.segments[i + 1][0]
            if i + 1 < len(profile.segments)
            else horizon
        )
        end = min(end, horizon)
        n = sum(1 for t in arrivals if start <= t < end)
        expected = base_rate * mult * (end - start)
        # Poisson sd is sqrt(expected); allow 5 sigma.
        assert abs(n - expected) < 5.0 * math.sqrt(expected), (
            f"segment {i}: {n} arrivals, expected {expected:.0f}"
        )


def test_parse_load_profile():
    assert parse_load_profile("burst@0.01:0.02:4").segments == (
        (0.0, 1.0), (0.01, 4.0), (0.03, 1.0),
    )
    d = parse_load_profile("diurnal@1:0.5:2")
    assert d.segments[0] == (0.0, 0.5)
    assert parse_load_profile("0:1,0.5:3").segments == ((0.0, 1.0), (0.5, 3.0))
    for bad in ("burst@1:2", "diurnal@x:1:2", "0.5:3", "nope"):
        with pytest.raises(ValueError):
            parse_load_profile(bad)
