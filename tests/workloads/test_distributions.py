"""Unit + property tests for flow-size distributions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.randoms import SeededRng
from repro.sim.units import MSS_BYTES
from repro.workloads.distributions import (
    LONG_FLOW_THRESHOLD,
    WORKLOADS,
    EmpiricalCDF,
    bimodal,
    data_mining,
    fixed_size,
    imc10,
    web_search,
)


def test_registry_has_the_three_traces():
    assert set(WORKLOADS) == {"websearch", "datamining", "imc10"}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_trace_cdfs_are_valid_and_heavy_tailed(name):
    dist = WORKLOADS[name]()
    rng = SeededRng(1)
    samples = [dist.sample(rng) for _ in range(5000)]
    assert all(1 <= s <= dist.max_bytes for s in samples)
    mean = sum(samples) / len(samples)
    median = sorted(samples)[len(samples) // 2]
    assert mean > 3 * median  # heavy tail: mean far above median


def test_imc10_tail_capped_at_3mb_datamining_at_1gb():
    assert imc10().max_bytes == 3_000_000
    assert data_mining().max_bytes == 1_000_000_000
    assert web_search().max_bytes == 30_000_000


def test_short_flow_majorities_match_paper_claims():
    """Paper: short flows dominate counts; DataMining/IMC10 have many
    more tiny flows than WebSearch."""
    ws, dm, im = web_search(), data_mining(), imc10()
    assert dm.cdf_at(1000) >= 0.5
    assert im.cdf_at(1000) >= 0.5
    assert ws.cdf_at(1000) < 0.1
    # Fig. 4 split: most flows are "short" in every workload
    assert ws.cdf_at(LONG_FLOW_THRESHOLD["websearch"]) > 0.8
    assert dm.cdf_at(LONG_FLOW_THRESHOLD["datamining"]) > 0.8
    assert im.cdf_at(LONG_FLOW_THRESHOLD["imc10"]) > 0.8


def test_cdf_at_interpolates():
    dist = EmpiricalCDF([(100, 0.5), (200, 1.0)])
    assert dist.cdf_at(50) == 0.0
    assert dist.cdf_at(100) == 0.5
    assert dist.cdf_at(150) == pytest.approx(0.75)
    assert dist.cdf_at(200) == 1.0
    assert dist.cdf_at(10**9) == 1.0


def test_mean_analytic_matches_sampled():
    dist = data_mining()
    rng = SeededRng(2)
    n = 200_000
    sampled = sum(dist.sample(rng) for _ in range(n)) / n
    assert sampled == pytest.approx(dist.mean(), rel=0.15)


def test_truncation_renormalizes():
    dist = data_mining().truncated(1_000_000)
    assert dist.max_bytes == 1_000_000
    rng = SeededRng(3)
    assert all(dist.sample(rng) <= 1_000_000 for _ in range(2000))
    assert dist.mean() < data_mining().mean()


def test_truncation_below_smallest_size_rejected():
    with pytest.raises(ValueError):
        data_mining().truncated(50)


def test_bimodal_modes_and_fraction():
    dist = bimodal(0.75)
    rng = SeededRng(4)
    samples = [dist.sample(rng) for _ in range(4000)]
    short, long_ = 3 * MSS_BYTES, 700 * MSS_BYTES
    assert set(samples) <= {short, long_}
    frac = samples.count(short) / len(samples)
    assert frac == pytest.approx(0.75, abs=0.03)


def test_bimodal_extremes_are_degenerate():
    rng = SeededRng(5)
    assert bimodal(1.0).sample(rng) == 3 * MSS_BYTES
    assert bimodal(0.0).sample(rng) == 700 * MSS_BYTES
    with pytest.raises(ValueError):
        bimodal(1.5)


def test_fixed_size_always_same():
    dist = fixed_size(12345)
    rng = SeededRng(6)
    assert all(dist.sample(rng) == 12345 for _ in range(100))
    assert dist.mean() == 12345


@pytest.mark.parametrize(
    "points",
    [
        [],                                   # empty
        [(100, 0.5)],                         # doesn't reach 1.0
        [(100, 0.5), (50, 1.0)],              # sizes not increasing
        [(100, 0.8), (200, 0.5)],             # cdf decreasing
        [(-5, 1.0)],                          # non-positive size
        [(100, 1.2)],                         # probability > 1
    ],
)
def test_invalid_cdfs_rejected(points):
    with pytest.raises(ValueError):
        EmpiricalCDF(points)


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(st.integers(1, 10**7), st.floats(0.01, 1.0)),
        min_size=1,
        max_size=10,
    ),
    st.integers(0, 2**30),
)
def test_property_samples_within_support(raw_points, seed):
    # build a valid CDF from arbitrary raw material
    sizes = sorted({s for s, _ in raw_points})
    probs = sorted(p for _, p in raw_points)[: len(sizes)]
    while len(probs) < len(sizes):
        probs.append(1.0)
    probs[-1] = 1.0
    dist = EmpiricalCDF(list(zip(sizes, probs)))
    rng = SeededRng(seed)
    for _ in range(50):
        s = dist.sample(rng)
        assert 1 <= s <= dist.max_bytes
    assert dist.cdf_at(dist.max_bytes) == 1.0
    assert 0 < dist.mean() <= dist.max_bytes
