"""Tests for the parametric synthetic distributions."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.net.topology import TopologyConfig
from repro.sim.randoms import SeededRng
from repro.workloads.synthetic import (
    LognormalDist,
    ParetoDist,
    UniformDist,
    parse_synthetic,
)


def sample_many(dist, n=20_000, seed=1):
    rng = SeededRng(seed)
    return [dist.sample(rng) for _ in range(n)]


# ----------------------------------------------------------------------
# Pareto
# ----------------------------------------------------------------------

def test_pareto_support_and_mean():
    dist = ParetoDist(alpha=1.3, min_bytes=1000, max_bytes=10_000_000)
    samples = sample_many(dist)
    assert all(1000 <= s <= 10_000_000 for s in samples)
    assert sum(samples) / len(samples) == pytest.approx(dist.mean(), rel=0.1)


def test_pareto_heavier_tail_with_smaller_alpha():
    light = ParetoDist(alpha=2.5, min_bytes=1000, max_bytes=10_000_000)
    heavy = ParetoDist(alpha=1.1, min_bytes=1000, max_bytes=10_000_000)
    assert heavy.mean() > light.mean()
    assert heavy.cdf_at(10_000) < light.cdf_at(10_000)


def test_pareto_alpha_one_special_case():
    dist = ParetoDist(alpha=1.0, min_bytes=1000, max_bytes=1_000_000)
    samples = sample_many(dist)
    assert sum(samples) / len(samples) == pytest.approx(dist.mean(), rel=0.1)


def test_pareto_cdf_properties():
    dist = ParetoDist(alpha=1.5, min_bytes=100, max_bytes=100_000)
    assert dist.cdf_at(50) == 0.0
    assert dist.cdf_at(100_000) == 1.0
    assert 0 < dist.cdf_at(1000) < dist.cdf_at(10_000) < 1


def test_pareto_truncation():
    dist = ParetoDist(alpha=1.5, min_bytes=100, max_bytes=10**9)
    cut = dist.truncated(1_000_000)
    assert cut.max_bytes == 1_000_000
    assert cut.mean() < dist.mean()
    with pytest.raises(ValueError):
        dist.truncated(50)


def test_pareto_validation():
    with pytest.raises(ValueError):
        ParetoDist(alpha=0, min_bytes=1, max_bytes=10)
    with pytest.raises(ValueError):
        ParetoDist(alpha=1, min_bytes=10, max_bytes=10)


# ----------------------------------------------------------------------
# Lognormal / Uniform
# ----------------------------------------------------------------------

def test_lognormal_median_and_cdf():
    dist = LognormalDist(median_bytes=10_000, sigma=1.0)
    samples = sample_many(dist)
    median = sorted(samples)[len(samples) // 2]
    assert median == pytest.approx(10_000, rel=0.1)
    assert dist.cdf_at(10_000) == pytest.approx(0.5, abs=0.01)


def test_lognormal_validation_and_truncation():
    with pytest.raises(ValueError):
        LognormalDist(0, 1)
    with pytest.raises(ValueError):
        LognormalDist(100, 1, max_bytes=50)
    dist = LognormalDist(10_000, 1.0)
    cut = dist.truncated(100_000)
    assert cut.max_bytes == 100_000
    assert max(sample_many(cut, 2000)) <= 100_000


def test_uniform_bounds_and_mean():
    dist = UniformDist(100, 200)
    samples = sample_many(dist, 5000)
    assert min(samples) >= 100 and max(samples) <= 200
    assert dist.mean() == 150
    assert dist.cdf_at(99) == 0.0 and dist.cdf_at(200) == 1.0
    with pytest.raises(ValueError):
        UniformDist(0, 10)


# ----------------------------------------------------------------------
# Parsing + end-to-end
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "spec,cls",
    [
        ("pareto:1.2:1000:1000000", ParetoDist),
        ("lognormal:5000:1.5", LognormalDist),
        ("lognormal:5000:1.5:200000", LognormalDist),
        ("uniform:100:5000", UniformDist),
    ],
)
def test_parse_synthetic(spec, cls):
    assert isinstance(parse_synthetic(spec), cls)


def test_parse_non_synthetic_returns_none():
    assert parse_synthetic("websearch") is None
    assert parse_synthetic("fixed:100") is None


def test_parse_bad_params_raise():
    with pytest.raises(ValueError):
        parse_synthetic("pareto:0:10:100")


def test_pareto_workload_runs_end_to_end():
    spec = ExperimentSpec(
        protocol="phost",
        workload="pareto:1.4:500:200000",
        n_flows=80,
        topology=TopologyConfig.small(),
        seed=4,
    )
    result = run_experiment(spec)
    assert result.completion_rate == 1.0
    assert result.mean_slowdown() >= 1.0


def test_uniform_workload_runs_end_to_end():
    spec = ExperimentSpec(
        protocol="pfabric",
        workload="uniform:1000:50000",
        n_flows=60,
        topology=TopologyConfig.small(),
        seed=4,
    )
    assert run_experiment(spec).completion_rate == 1.0


@settings(max_examples=25, deadline=None)
@given(
    st.floats(min_value=0.8, max_value=3.0),
    st.integers(min_value=100, max_value=10_000),
    st.integers(min_value=2, max_value=1000),
)
def test_property_pareto_samples_in_support(alpha, lo, factor):
    hi = lo * factor
    dist = ParetoDist(alpha, lo, hi)
    rng = SeededRng(7)
    for _ in range(50):
        s = dist.sample(rng)
        assert lo <= s <= hi or s == 1  # rounding floor guard
    assert lo <= dist.mean() <= hi
