"""Tests for traffic matrices."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.randoms import SeededRng
from repro.workloads.traffic_matrix import AllToAll, IncastPattern, Permutation


@given(st.integers(2, 64), st.integers(0, 2**30))
def test_all_to_all_never_self(n, seed):
    tm = AllToAll(n)
    rng = SeededRng(seed)
    for _ in range(50):
        src, dst = tm.sample_pair(rng)
        assert 0 <= src < n and 0 <= dst < n
        assert src != dst


def test_all_to_all_covers_all_sources():
    tm = AllToAll(8)
    rng = SeededRng(1)
    sources = {tm.sample_pair(rng)[0] for _ in range(2000)}
    assert sources == set(range(8))


def test_traffic_matrix_needs_two_hosts():
    with pytest.raises(ValueError):
        AllToAll(1)


def test_permutation_is_fixed_derangement():
    rng = SeededRng(3)
    tm = Permutation(12, rng)
    assert sorted(tm.perm) == list(range(12))
    assert all(tm.perm[i] != i for i in range(12))
    for _ in range(100):
        src, dst = tm.sample_pair(rng)
        assert dst == tm.destination_of(src)


def test_permutation_reproducible_from_seed():
    a = Permutation(20, SeededRng(5))
    b = Permutation(20, SeededRng(5))
    assert a.perm == b.perm


def test_incast_request_shape():
    pattern = IncastPattern(n_hosts=16, n_senders=5, total_bytes=1_000_000)
    assert pattern.bytes_per_sender == 200_000
    rng = SeededRng(4)
    receiver, senders = pattern.make_request(rng)
    assert 0 <= receiver < 16
    assert len(senders) == 5
    assert len(set(senders)) == 5
    assert receiver not in senders


def test_incast_validation():
    with pytest.raises(ValueError):
        IncastPattern(16, 0, 1000)
    with pytest.raises(ValueError):
        IncastPattern(16, 16, 1000)      # receiver excluded
    with pytest.raises(ValueError):
        IncastPattern(16, 8, 4)          # < 1 byte per sender
