"""Tests for deadline assignment (Figure 5c setup)."""

from __future__ import annotations

import pytest

from repro.net.packet import Flow
from repro.net.topology import Fabric, TopologyConfig
from repro.sim.engine import EventLoop
from repro.sim.randoms import SeededRng
from repro.workloads.deadlines import assign_deadlines


@pytest.fixture
def fabric():
    return Fabric(EventLoop(), TopologyConfig.small(), SeededRng(1))


def test_deadlines_are_absolute_and_floored(fabric):
    flows = [Flow(i, 0, 5, 1_000_000, arrival=0.5) for i in range(200)]
    assign_deadlines(flows, fabric, SeededRng(2))
    floor = 1.25 * fabric.opt_fct(1_000_000, 0, 5)
    for f in flows:
        assert f.deadline is not None
        assert f.deadline >= f.arrival + floor


def test_mean_slack_roughly_exponential_mean(fabric):
    flows = [Flow(i, 0, 5, 1460, arrival=0.0) for i in range(5000)]
    assign_deadlines(flows, fabric, SeededRng(3), mean=1000e-6)
    slacks = [f.deadline - f.arrival for f in flows]
    # tiny flows rarely hit the floor, so the mean tracks the exponential
    assert sum(slacks) / len(slacks) == pytest.approx(1000e-6, rel=0.1)


def test_floor_dominates_for_huge_flows(fabric):
    flows = [Flow(i, 0, 5, 500_000_000, arrival=0.0) for i in range(20)]
    assign_deadlines(flows, fabric, SeededRng(4), mean=1e-6)
    floor = 1.25 * fabric.opt_fct(500_000_000, 0, 5)
    assert all(f.deadline == pytest.approx(floor) for f in flows)


def test_validation(fabric):
    with pytest.raises(ValueError):
        assign_deadlines([], fabric, SeededRng(1), mean=0)
    with pytest.raises(ValueError):
        assign_deadlines([], fabric, SeededRng(1), floor_factor=0.5)
