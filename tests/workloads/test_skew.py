"""Property tests for the SkewedMatrix hot-rack traffic matrix."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.topology import TopologyConfig
from repro.sim.randoms import SeededRng
from repro.workloads.skew import SkewConfig, SkewedMatrix, parse_skew

TOPO = TopologyConfig.small()  # 3 racks x 4 hosts = 12 hosts


def matrix(config: SkewConfig, topo: TopologyConfig = TOPO) -> SkewedMatrix:
    return SkewedMatrix(topo.n_hosts, config, topo.rack_of)


# A strategy over valid configs for the small topology.
configs = st.builds(
    SkewConfig,
    hot_racks=st.sets(st.integers(0, 2), max_size=2).map(tuple),
    src_hot_fraction=st.floats(0.0, 1.0, allow_nan=False),
    dst_hot_fraction=st.floats(0.0, 1.0, allow_nan=False),
    rack_affinity=st.floats(0.0, 1.0, allow_nan=False),
    exclude_hosts=st.sets(st.integers(0, 11), max_size=9).map(tuple),
)


@settings(max_examples=60, deadline=None)
@given(config=configs)
def test_weights_sum_to_one_and_exclude_dead_hosts(config):
    """Exact weight invariants: both vectors are distributions and an
    excluded host carries exactly zero mass on both sides."""
    try:
        tm = matrix(config)
    except ValueError:
        return  # degenerate configs (too few live hosts) must raise
    for weights in (tm.src_weights(), tm.dst_weights()):
        assert math.isclose(sum(weights), 1.0, rel_tol=1e-12)
        assert all(w >= 0.0 for w in weights)
        for dead in config.exclude_hosts:
            assert weights[dead] == 0.0


@settings(max_examples=30, deadline=None)
@given(config=configs, seed=st.integers(0, 2**20))
def test_sampled_pairs_never_select_dead_hosts(config, seed):
    try:
        tm = matrix(config)
    except ValueError:
        return
    dead = set(config.exclude_hosts)
    rng = SeededRng(seed).stream("pairs")
    for _ in range(200):
        src, dst = tm.sample_pair(rng)
        assert src != dst
        assert src not in dead and dst not in dead
        assert 0 <= src < TOPO.n_hosts and 0 <= dst < TOPO.n_hosts


def test_hot_rack_mass_matches_fraction():
    """With hot_fraction=0.7 on rack 0, rack 0's four hosts carry
    exactly 0.7 of the weight (uniform within each class)."""
    tm = matrix(SkewConfig(hot_racks=(0,), src_hot_fraction=0.7, dst_hot_fraction=0.9))
    src_w, dst_w = tm.src_weights(), tm.dst_weights()
    hot = [h for h in range(TOPO.n_hosts) if TOPO.rack_of(h) == 0]
    assert math.isclose(sum(src_w[h] for h in hot), 0.7, rel_tol=1e-12)
    assert math.isclose(sum(dst_w[h] for h in hot), 0.9, rel_tol=1e-12)
    # Empirically the skew shows up in the draws too.
    rng = SeededRng(7).stream("pairs")
    draws = [tm.sample_pair(rng) for _ in range(4000)]
    hot_dst = sum(1 for _, d in draws if TOPO.rack_of(d) == 0)
    assert hot_dst / len(draws) > 0.75  # 0.9 weight minus dst!=src rejection


def test_full_affinity_keeps_destination_in_source_rack():
    tm = matrix(SkewConfig(hot_racks=(0,), rack_affinity=1.0))
    rng = SeededRng(11).stream("pairs")
    for _ in range(300):
        src, dst = tm.sample_pair(rng)
        assert TOPO.rack_of(src) == TOPO.rack_of(dst)
        assert src != dst


def test_zero_affinity_crosses_racks():
    tm = matrix(SkewConfig(rack_affinity=0.0))
    rng = SeededRng(13).stream("pairs")
    assert any(
        TOPO.rack_of(s) != TOPO.rack_of(d)
        for s, d in (tm.sample_pair(rng) for _ in range(100))
    )


def test_affinity_falls_back_when_rack_is_dead():
    """Source's rack-mates all excluded: the affinity draw must fall
    back to the global weights instead of crashing or self-looping."""
    # Kill everything in rack 0 except host 0; hosts 1-3 share its rack.
    cfg = SkewConfig(rack_affinity=1.0, exclude_hosts=(1, 2, 3))
    tm = matrix(cfg)
    rng = SeededRng(17).stream("pairs")
    for _ in range(200):
        src, dst = tm.sample_pair(rng)
        if src == 0:
            assert TOPO.rack_of(dst) != 0  # fell back off-rack
        assert dst not in (1, 2, 3)


def test_saturated_weights_still_terminate():
    """Regression: with one live hot host and dst_hot_fraction a hair
    under 1.0, the cold hosts' weights are positive but vanish from the
    cumulative sum in float arithmetic — every weighted draw returns
    the hot host.  When that host is also the source, the unbounded
    rejection loop used to spin forever; the bounded loop must fall
    back deterministically to a positively weighted other host."""
    cfg = SkewConfig(
        hot_racks=(0,),
        src_hot_fraction=1.0,          # src is always the lone hot host
        dst_hot_fraction=1.0 - 2**-53,  # cold mass exists but saturates
        exclude_hosts=(1, 2, 3),        # rack 0 keeps only host 0
    )
    tm = matrix(cfg)
    rng = SeededRng(23).stream("pairs")
    for _ in range(50):
        src, dst = tm.sample_pair(rng)
        assert src == 0
        assert dst != src
        assert tm.dst_weights()[dst] > 0.0


def test_degenerate_configs_rejected():
    with pytest.raises(ValueError):
        matrix(SkewConfig(exclude_hosts=tuple(range(11))))  # one live host
    with pytest.raises(ValueError):
        matrix(SkewConfig(hot_racks=(9,)))  # rack out of range
    with pytest.raises(ValueError):
        matrix(SkewConfig(exclude_hosts=(99,)))  # host out of range
    with pytest.raises(ValueError):
        SkewConfig(src_hot_fraction=1.5)
    with pytest.raises(ValueError):
        SkewConfig(rack_affinity=-0.1)


def test_all_racks_hot_degrades_to_uniform():
    """Hot set covering every live rack: no skew is possible, weights
    must be uniform over live hosts (not 0/0 from an empty cold class)."""
    tm = matrix(SkewConfig(hot_racks=(0, 1, 2), src_hot_fraction=0.9))
    live = 1.0 / TOPO.n_hosts
    assert all(math.isclose(w, live) for w in tm.src_weights())


def test_parse_skew_round_trip():
    cfg = parse_skew("racks=0+1,src=0.7,dst=0.9,affinity=0.25,exclude=5+6")
    assert cfg == SkewConfig(
        hot_racks=(0, 1),
        src_hot_fraction=0.7,
        dst_hot_fraction=0.9,
        rack_affinity=0.25,
        exclude_hosts=(5, 6),
    )
    assert parse_skew("racks=2") == SkewConfig(hot_racks=(2,))
    with pytest.raises(ValueError):
        parse_skew("racks=0,bogus=1")
    with pytest.raises(ValueError):
        parse_skew("racks")
