"""Tests for job-structured coflow generation (repro.workloads.coflows)."""

from __future__ import annotations

import math
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.randoms import SeededRng
from repro.workloads.coflows import CoflowConfig, CoflowGenerator, parse_coflows
from repro.workloads.distributions import imc10
from repro.workloads.generator import FlowGenerator, poisson_flow_rate
from repro.workloads.traffic_matrix import AllToAll

N_HOSTS = 12
ACCESS = 10e9


def gen(config: CoflowConfig, seed: int = 1, load: float = 0.6) -> CoflowGenerator:
    return CoflowGenerator(
        imc10(), AllToAll(N_HOSTS), ACCESS, load, SeededRng(seed), config
    )


def test_config_validation():
    with pytest.raises(ValueError):
        CoflowConfig(min_flows=0)
    with pytest.raises(ValueError):
        CoflowConfig(min_flows=5, max_flows=3)
    with pytest.raises(ValueError):
        CoflowConfig(stagger=-1.0)
    assert CoflowConfig(2, 6).mean_width == 4.0


@settings(max_examples=25, deadline=None)
@given(
    min_w=st.integers(1, 4),
    extra=st.integers(0, 6),
    seed=st.integers(0, 2**20),
    n_flows=st.integers(1, 80),
)
def test_widths_within_bounds_and_exact_count(min_w, extra, seed, n_flows):
    """Every job's width is within [min, max] (except possibly the last,
    capped by the flow budget) and exactly n_flows flows come back."""
    cfg = CoflowConfig(min_w, min_w + extra)
    flows = gen(cfg, seed=seed).generate(n_flows)
    assert len(flows) == n_flows
    assert [f.fid for f in flows] == list(range(n_flows))
    widths = Counter(f.request_id for f in flows)
    job_ids = sorted(widths)
    assert job_ids == list(range(len(job_ids)))  # dense, from 0
    for jid in job_ids[:-1]:
        assert cfg.min_flows <= widths[jid] <= cfg.max_flows
    assert widths[job_ids[-1]] <= cfg.max_flows  # last may be budget-capped


def test_members_share_arrival_without_stagger():
    flows = gen(CoflowConfig(3, 3)).generate(30)
    by_job = {}
    for f in flows:
        by_job.setdefault(f.request_id, []).append(f)
    for members in by_job.values():
        arrivals = {f.arrival for f in members}
        assert len(arrivals) == 1


def test_stagger_spaces_members():
    cfg = CoflowConfig(4, 4, stagger=1e-4)
    flows = gen(cfg).generate(16)
    by_job = {}
    for f in flows:
        by_job.setdefault(f.request_id, []).append(f)
    for members in by_job.values():
        arrivals = sorted(f.arrival for f in members)
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(math.isclose(g, 1e-4, rel_tol=1e-9) for g in gaps)


def test_job_rate_preserves_offered_load():
    """job_rate * mean_width == the flat generator's flow rate, so the
    offered load matches at the same ``load`` knob."""
    cfg = CoflowConfig(2, 6)
    g = gen(cfg, load=0.6)
    flat_rate = poisson_flow_rate(imc10(), N_HOSTS, ACCESS, 0.6)
    assert math.isclose(g.job_rate * cfg.mean_width, flat_rate, rel_tol=1e-12)


def test_uses_distinct_rng_streams_from_flat_generator():
    """A coflow run must not perturb the flat generator's streams: the
    flat generator seeded identically produces the same flows whether
    or not a CoflowGenerator drew from the same root seed first."""
    root_a = SeededRng(9)
    CoflowGenerator(
        imc10(), AllToAll(N_HOSTS), ACCESS, 0.6, root_a, CoflowConfig(2, 4)
    ).generate(20)
    flat_a = FlowGenerator(imc10(), AllToAll(N_HOSTS), ACCESS, 0.6, root_a)

    flat_b = FlowGenerator(imc10(), AllToAll(N_HOSTS), ACCESS, 0.6, SeededRng(9))
    # "sizes"/"pairs" are shared stream names, so the coflow draws DO
    # consume them — but "arrivals" is untouched; assert the arrival
    # sequence (the digest-critical stream) is unaffected.
    arr_a = [f.arrival for f in flat_a.generate(10)]
    arr_b = [f.arrival for f in flat_b.generate(10)]
    # Arrivals come from the "arrivals" stream, never touched above.
    diffs_a = [b - a for a, b in zip(arr_a, arr_a[1:])]
    diffs_b = [b - a for a, b in zip(arr_b, arr_b[1:])]
    assert diffs_a == diffs_b


def test_deterministic_across_identical_seeds():
    a = gen(CoflowConfig(2, 5), seed=21).generate(40)
    b = gen(CoflowConfig(2, 5), seed=21).generate(40)
    assert [(f.fid, f.src, f.dst, f.size_bytes, f.arrival, f.request_id) for f in a] == [
        (f.fid, f.src, f.dst, f.size_bytes, f.arrival, f.request_id) for f in b
    ]


def test_first_fid_and_first_job_id_offsets():
    flows = gen(CoflowConfig(2, 2), seed=5).generate(6, first_fid=100, first_job_id=7)
    assert [f.fid for f in flows] == list(range(100, 106))
    assert sorted(set(f.request_id for f in flows)) == [7, 8, 9]


def test_max_bytes_truncates_sizes():
    flows = gen(CoflowConfig(2, 4), seed=3).generate(50, max_bytes=10_000)
    assert all(f.size_bytes <= 10_000 for f in flows)


def test_rejects_nonpositive_n_flows():
    with pytest.raises(ValueError):
        gen(CoflowConfig()).generate(0)


def test_parse_coflows():
    assert parse_coflows("2:6") == CoflowConfig(2, 6)
    assert parse_coflows("3:5:0.001") == CoflowConfig(3, 5, 0.001)
    for bad in ("2", "2:6:1:9", "a:b", "5:3"):
        with pytest.raises(ValueError):
            parse_coflows(bad)
