"""Tests for flow-trace CSV import/export and trace replay."""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_flow_list
from repro.experiments.spec import ExperimentSpec
from repro.net.packet import Flow
from repro.net.topology import TopologyConfig
from repro.sim.randoms import SeededRng
from repro.workloads.distributions import imc10
from repro.workloads.generator import FlowGenerator
from repro.workloads.traffic_matrix import AllToAll
from repro.workloads.trace_io import (
    TraceFormatError,
    iter_flows,
    load_flows,
    save_flows,
)


def sample_flows(n=20, seed=1):
    gen = FlowGenerator(imc10(), AllToAll(12), 10e9, 0.5, SeededRng(seed))
    flows = gen.generate(n)
    flows[0].tenant = 3
    flows[1].deadline = 0.125
    return flows


def test_round_trip_preserves_everything(tmp_path):
    path = tmp_path / "trace.csv"
    flows = sample_flows()
    assert save_flows(flows, path) == len(flows)
    loaded = load_flows(path, n_hosts=12)
    assert len(loaded) == len(flows)
    for a, b in zip(flows, loaded):
        assert (a.arrival, a.src, a.dst, a.size_bytes, a.tenant, a.deadline) == (
            b.arrival, b.src, b.dst, b.size_bytes, b.tenant, b.deadline,
        )


def test_loaded_flows_sorted_and_renumbered(tmp_path):
    path = tmp_path / "trace.csv"
    flows = [
        Flow(100, 0, 1, 1460, 3e-3),
        Flow(200, 1, 2, 1460, 1e-3),
    ]
    save_flows(flows, path)
    loaded = load_flows(path, first_fid=10)
    assert [f.fid for f in loaded] == [10, 11]
    assert loaded[0].arrival < loaded[1].arrival


def test_minimal_four_column_trace(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text("arrival,src,dst,size_bytes\n0.001,0,5,14600\n")
    (flow,) = load_flows(path)
    assert (flow.src, flow.dst, flow.size_bytes) == (0, 5, 14600)
    assert flow.tenant == 0 and flow.deadline is None


@pytest.mark.parametrize(
    "body",
    [
        "",                                            # empty file
        "time,who\n",                                  # wrong header
        "arrival,src,dst,size_bytes\nx,0,1,100\n",     # bad number
        "arrival,src,dst,size_bytes\n-1,0,1,100\n",    # negative arrival
        "arrival,src,dst,size_bytes\n0,3,3,100\n",     # self loop
        "arrival,src,dst,size_bytes\n0,0,1,-5\n",      # negative size
    ],
)
def test_malformed_traces_rejected(tmp_path, body):
    path = tmp_path / "bad.csv"
    path.write_text(body)
    with pytest.raises(TraceFormatError):
        load_flows(path)


def test_host_range_validation(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text("arrival,src,dst,size_bytes\n0,0,99,100\n")
    with pytest.raises(TraceFormatError):
        load_flows(path, n_hosts=12)
    assert load_flows(path) != []  # fine without a fabric bound


def test_blank_lines_skipped(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text("arrival,src,dst,size_bytes\n\n0,0,1,100\n\n")
    assert len(load_flows(path)) == 1


def test_replay_through_simulator(tmp_path):
    """End to end: generate -> save -> load -> simulate -> all complete."""
    path = tmp_path / "trace.csv"
    save_flows(sample_flows(30, seed=9), path)
    spec = ExperimentSpec(
        protocol="phost",
        workload="fixed:1",  # ignored by run_flow_list
        n_flows=1,
        topology=TopologyConfig.small(),
        seed=9,
    )
    flows = load_flows(path, n_hosts=12)
    result = run_flow_list(spec, flows)
    assert result.n_completed == len(flows)
    assert result.mean_slowdown() >= 1.0


def test_jsonl_round_trip_preserves_everything(tmp_path):
    path = tmp_path / "trace.jsonl"
    flows = sample_flows()
    flows[2].request_id = 7
    assert save_flows(flows, path) == len(flows)
    loaded = load_flows(path, n_hosts=12)
    for a, b in zip(flows, loaded):
        assert (
            a.arrival, a.src, a.dst, a.size_bytes,
            a.tenant, a.deadline, a.request_id,
        ) == (
            b.arrival, b.src, b.dst, b.size_bytes,
            b.tenant, b.deadline, b.request_id,
        )


def test_csv_round_trip_preserves_job_column(tmp_path):
    path = tmp_path / "trace.csv"
    flows = [Flow(0, 0, 1, 1460, 1e-3, request_id=4), Flow(1, 2, 3, 1460, 2e-3)]
    save_flows(flows, path)
    loaded = load_flows(path)
    assert loaded[0].request_id == 4
    assert loaded[1].request_id is None


def test_explicit_fmt_overrides_suffix(tmp_path):
    path = tmp_path / "trace.dat"
    save_flows(sample_flows(5), path, fmt="jsonl")
    assert path.read_text().lstrip().startswith("{")
    assert len(load_flows(path, fmt="jsonl")) == 5
    with pytest.raises(ValueError):
        save_flows(sample_flows(5), tmp_path / "x.csv", fmt="xml")


def test_iter_flows_streams_in_file_order(tmp_path):
    path = tmp_path / "trace.csv"
    save_flows([Flow(0, 0, 1, 1460, 3e-3), Flow(1, 1, 2, 1460, 1e-3)], path)
    streamed = list(iter_flows(path, first_fid=5))
    # File order, not arrival order; fids numbered from first_fid.
    assert [f.arrival for f in streamed] == [3e-3, 1e-3]
    assert [f.fid for f in streamed] == [5, 6]


def test_sorted_true_preserves_order_and_rejects_non_monotone(tmp_path):
    path = tmp_path / "ok.csv"
    save_flows([Flow(0, 0, 1, 1460, 1e-3), Flow(1, 1, 2, 1460, 2e-3)], path)
    loaded = load_flows(path, sorted=True)
    assert [f.arrival for f in loaded] == [1e-3, 2e-3]

    bad = tmp_path / "bad.csv"
    save_flows([Flow(0, 0, 1, 1460, 3e-3), Flow(1, 1, 2, 1460, 1e-3)], bad)
    with pytest.raises(TraceFormatError, match="not monotone"):
        load_flows(bad, sorted=True)


@pytest.mark.parametrize(
    "body",
    [
        "arrival,src,dst,size_bytes\n0,0,1,0\n",   # zero size
        "arrival,src,dst,size_bytes\n0,0,1,-5\n",  # negative size
    ],
)
def test_non_positive_sizes_rejected(tmp_path, body):
    path = tmp_path / "bad.csv"
    path.write_text(body)
    with pytest.raises(TraceFormatError, match="size"):
        load_flows(path)


@pytest.mark.parametrize(
    "body, msg",
    [
        ("", "empty"),                                   # empty jsonl
        ("not json\n", "invalid JSON"),                  # bad json
        ('{"arrival": 0.1, "src": 0}\n', "missing"),     # missing keys
        ('{"arrival": 0.1, "src": 0, "dst": 0, "size_bytes": 10}\n', "src == dst"),
    ],
)
def test_malformed_jsonl_rejected(tmp_path, body, msg):
    path = tmp_path / "bad.jsonl"
    path.write_text(body)
    with pytest.raises(TraceFormatError, match=msg):
        load_flows(path)


def test_replay_is_identical_to_original_run(tmp_path):
    """Simulating a saved trace must reproduce the original FCTs."""
    spec = ExperimentSpec(
        protocol="phost",
        workload="fixed:1",
        n_flows=1,
        topology=TopologyConfig.small(),
        seed=4,
    )
    original = sample_flows(25, seed=4)
    first = run_flow_list(spec, [Flow(f.fid, f.src, f.dst, f.size_bytes, f.arrival) for f in original])
    path = tmp_path / "trace.csv"
    save_flows(original, path)
    second = run_flow_list(spec, load_flows(path, n_hosts=12))
    assert [r.finish for r in first.records] == [r.finish for r in second.records]
