"""Unit tests for the metrics collector."""

from __future__ import annotations

import pytest

from repro.metrics.collector import MetricsCollector
from repro.net.packet import Flow, Packet, PacketType, control_packet


def data_pkt(flow, seq=0):
    return Packet(PacketType.DATA, flow, seq, flow.src, flow.dst, flow.wire_bytes_of(seq))


def test_arrival_and_completion_counters():
    c = MetricsCollector()
    c.expected_flows = 2
    f1 = Flow(1, 0, 1, 1460 * 3, 0.0)
    f2 = Flow(2, 0, 2, 1460, 0.0)
    c.flow_arrived(f1, 0.0)
    c.flow_arrived(f2, 1e-6)
    assert c.pkts_arrived == 4
    assert not c.all_complete
    c.flow_completed(f1, 1e-3)
    assert c.n_completed == 1
    c.flow_completed(f2, 2e-3)
    assert c.all_complete
    assert c.payload_bytes_delivered == 1460 * 4
    assert c.duration() == pytest.approx(2e-3)


def test_completion_is_idempotent():
    c = MetricsCollector()
    f = Flow(1, 0, 1, 100, 0.0)
    c.flow_arrived(f, 0.0)
    c.flow_completed(f, 1.0)
    c.flow_completed(f, 2.0)  # duplicate ACK path
    assert c.n_completed == 1
    assert f.finish == 1.0
    assert c.payload_bytes_delivered == 100


def test_all_complete_requires_expected_count():
    c = MetricsCollector()
    f = Flow(1, 0, 1, 100, 0.0)
    c.flow_arrived(f, 0.0)
    c.flow_completed(f, 1.0)
    assert not c.all_complete        # expected_flows unset
    c.expected_flows = 1
    assert c.all_complete
    c.expected_flows = 5
    assert not c.all_complete


def test_injection_vs_retransmission_accounting():
    c = MetricsCollector()
    f = Flow(1, 0, 1, 1460 * 2, 0.0)
    c.data_sent(data_pkt(f, 0), first_time=True)
    c.data_sent(data_pkt(f, 0), first_time=False)
    c.data_sent(data_pkt(f, 1), first_time=True)
    assert c.data_pkts_injected == 2
    assert c.data_pkts_retransmitted == 1


def test_pending_counter_for_stability():
    c = MetricsCollector()
    f = Flow(1, 0, 1, 1460 * 10, 0.0)
    c.flow_arrived(f, 0.0)
    assert c.pkts_pending == 10
    c.data_sent(data_pkt(f, 0), first_time=True)
    assert c.pkts_pending == 9


def test_tenant_byte_accounting():
    c = MetricsCollector()
    f0 = Flow(1, 0, 1, 1460, 0.0, tenant=0)
    f1 = Flow(2, 0, 2, 1460, 0.0, tenant=1)
    c.data_delivered(data_pkt(f0))
    c.data_delivered(data_pkt(f1))
    c.data_delivered(data_pkt(f1))
    assert c.delivered_bytes_by_tenant == {0: 1460, 1: 2920}


def test_control_bytes_counted():
    c = MetricsCollector()
    f = Flow(1, 0, 1, 100, 0.0)
    c.control_sent(control_packet(PacketType.RTS, f, 0, 0, 1, 0.0))
    c.control_sent(control_packet(PacketType.ACK, f, 0, 1, 0, 0.0))
    assert c.control_pkts_sent == 2
    assert c.control_bytes_sent == 80


def test_on_complete_hook_fires():
    c = MetricsCollector()
    seen = []
    c.on_complete = lambda flow, now: seen.append((flow.fid, now))
    f = Flow(7, 0, 1, 100, 0.0)
    c.flow_arrived(f, 0.0)
    c.flow_completed(f, 0.5)
    assert seen == [(7, 0.5)]
