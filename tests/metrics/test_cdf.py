"""Tests for the analysis distribution utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.metrics.cdf import (
    empirical_cdf,
    histogram,
    log_bins,
    slowdown_by_size,
    sparkline,
)
from repro.metrics.records import FlowRecord


def rec(size, slowdown):
    return FlowRecord(
        fid=0, src=0, dst=1, size_bytes=size, n_pkts=1, tenant=0,
        arrival=0.0, finish=slowdown * 1.0, opt=1.0,
    )


def test_empirical_cdf_shape():
    points = empirical_cdf([3.0, 1.0, 2.0])
    assert points == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)), (3.0, 1.0)]
    assert empirical_cdf([]) == []


@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=60))
def test_property_cdf_monotone_and_ends_at_one(values):
    points = empirical_cdf(values)
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    assert xs == sorted(xs)
    assert ys == sorted(ys)
    assert ys[-1] == pytest.approx(1.0)


def test_log_bins_cover_range():
    edges = log_bins(100, 1_000_000, per_decade=1)
    assert edges[0] <= 100
    assert edges[-1] >= 1_000_000
    ratios = [b / a for a, b in zip(edges, edges[1:])]
    assert all(r == pytest.approx(10.0, rel=1e-6) for r in ratios)


def test_log_bins_validation():
    with pytest.raises(ValueError):
        log_bins(0, 10)
    with pytest.raises(ValueError):
        log_bins(10, 5)
    with pytest.raises(ValueError):
        log_bins(1, 10, per_decade=0)


def test_slowdown_by_size_bins_and_counts():
    records = [rec(100, 1.0), rec(150, 3.0), rec(100_000, 5.0)]
    rows = slowdown_by_size(records, per_decade=1)
    assert sum(count for _, _, count in rows) == 3
    # small flows average 2.0, the big one is alone at 5.0
    means = [m for _, m, _ in rows]
    assert means[0] == pytest.approx(2.0)
    assert means[-1] == pytest.approx(5.0)
    assert slowdown_by_size([]) == []


def test_histogram_counts_and_ignores_outside():
    counts = histogram([1, 2, 3, 10, -5], edges=[0, 2, 4])
    assert counts == [1, 2]
    with pytest.raises(ValueError):
        histogram([1], edges=[0])


def test_sparkline_basics():
    line = sparkline([0, 1, 2, 3], width=4)
    assert len(line) == 4
    assert line[0] == " " and line[-1] == "@"
    assert sparkline([]) == ""
    assert sparkline([5, 5, 5]) == "..."


def test_sparkline_resamples_long_series():
    line = sparkline(list(range(1000)), width=10)
    assert len(line) == 10
    with pytest.raises(ValueError):
        sparkline([1.0], width=0)
