"""Tests for slowdown/NFCT/percentile analysis and flow records."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics.records import FlowRecord, records_from_flows
from repro.metrics.slowdown import (
    deadline_met_fraction,
    mean_fct,
    mean_slowdown,
    nfct,
    percentile,
    slowdown_percentile,
    split_short_long,
)
from repro.net.packet import Flow
from repro.net.topology import Fabric, TopologyConfig
from repro.sim.engine import EventLoop
from repro.sim.randoms import SeededRng


def rec(size=1460, arrival=0.0, finish=2.0, opt=1.0, deadline=None, fid=0):
    return FlowRecord(
        fid=fid, src=0, dst=1, size_bytes=size, n_pkts=1, tenant=0,
        arrival=arrival, finish=finish, opt=opt, deadline=deadline,
    )


def test_record_derivations():
    r = rec(arrival=1.0, finish=3.0, opt=0.5)
    assert r.fct == pytest.approx(2.0)
    assert r.slowdown == pytest.approx(4.0)
    assert r.completed


def test_incomplete_record_yields_none():
    r = rec(finish=None)
    assert r.fct is None and r.slowdown is None
    assert not r.completed
    assert r.met_deadline is None or r.deadline is None


def test_mean_slowdown_ignores_incomplete():
    records = [rec(finish=2.0, opt=1.0), rec(finish=None), rec(finish=4.0, opt=1.0)]
    assert mean_slowdown(records) == pytest.approx(3.0)
    assert math.isnan(mean_slowdown([rec(finish=None)]))


def test_nfct_is_ratio_of_means():
    records = [rec(finish=2.0, opt=1.0), rec(finish=10.0, opt=4.0)]
    assert nfct(records) == pytest.approx(12.0 / 5.0)
    assert mean_fct(records) == pytest.approx(6.0)


def test_split_short_long_threshold():
    records = [rec(size=100, fid=1), rec(size=10**7, fid=2), rec(size=10**7 + 1, fid=3)]
    short, long_ = split_short_long(records, 10**7)
    assert [r.fid for r in short] == [1, 2]   # threshold is inclusive for short
    assert [r.fid for r in long_] == [3]


def test_deadline_met_fraction():
    records = [
        rec(finish=1.0, deadline=2.0),      # met
        rec(finish=3.0, deadline=2.0),      # missed
        rec(finish=None, deadline=2.0),     # never finished -> missed
        rec(finish=1.0, deadline=None),     # no deadline -> excluded
    ]
    assert deadline_met_fraction(records) == pytest.approx(1 / 3)
    assert math.isnan(deadline_met_fraction([rec(deadline=None)]))


@given(st.lists(st.floats(0, 1000), min_size=1, max_size=200), st.floats(0, 100))
def test_percentile_matches_numpy(values, p):
    ours = percentile(values, p)
    theirs = float(np.percentile(np.array(values, dtype=float), p, method="linear"))
    assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-9)


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    assert math.isnan(percentile([], 50))


def test_slowdown_percentile():
    records = [rec(finish=float(i), opt=1.0) for i in range(1, 101)]
    assert slowdown_percentile(records, 99) == pytest.approx(99.01, rel=1e-3)


def test_records_from_flows_computes_opt():
    fabric = Fabric(EventLoop(), TopologyConfig.small(), SeededRng(1))
    flow = Flow(1, 0, 5, 14600, 0.0)
    flow.finish = 1e-3
    (record,) = records_from_flows([flow], fabric)
    assert record.opt == pytest.approx(fabric.opt_fct(14600, 0, 5))
    assert record.slowdown > 1
