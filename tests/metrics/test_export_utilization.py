"""Tests for record export/import, JSON summaries, and link-utilization
accounting."""

from __future__ import annotations

import json
import math

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.metrics.export import load_records, result_to_json, save_records
from repro.net.topology import TopologyConfig


@pytest.fixture(scope="module")
def result():
    spec = ExperimentSpec(
        protocol="phost", workload="imc10", n_flows=60,
        topology=TopologyConfig.small(), max_flow_bytes=100_000,
        with_deadlines=True, seed=3,
    )
    return run_experiment(spec)


def test_records_round_trip(tmp_path, result):
    path = tmp_path / "records.csv"
    assert save_records(result.records, path) == len(result.records)
    loaded = load_records(path)
    assert len(loaded) == len(result.records)
    for a, b in zip(result.records, loaded):
        assert a == b  # frozen dataclasses compare by value
    # derived metrics agree
    from repro.metrics.slowdown import mean_slowdown

    assert mean_slowdown(loaded) == pytest.approx(result.mean_slowdown())


def test_load_rejects_foreign_csv(tmp_path):
    path = tmp_path / "other.csv"
    path.write_text("a,b,c\n1,2,3\n")
    with pytest.raises(ValueError):
        load_records(path)


def test_result_to_json(tmp_path, result):
    path = result_to_json(result, tmp_path / "summary.json")
    payload = json.loads(path.read_text())
    assert payload["spec"]["protocol"] == "phost"
    assert payload["spec"]["topology"]["n_racks"] == 3
    assert payload["metrics"]["n_completed"] == 60
    assert payload["metrics"]["mean_slowdown"] >= 1.0


def test_incomplete_flow_round_trips_as_none(tmp_path):
    from repro.metrics.records import FlowRecord

    record = FlowRecord(fid=1, src=0, dst=1, size_bytes=10, n_pkts=1,
                        tenant=0, arrival=0.0, finish=None, opt=1.0)
    path = tmp_path / "r.csv"
    save_records([record], path)
    (loaded,) = load_records(path)
    assert loaded.finish is None
    assert loaded.slowdown is None


# ----------------------------------------------------------------------
# Link utilization
# ----------------------------------------------------------------------

def test_utilization_by_hop_reflects_traffic():
    from repro.experiments.runner import build_simulation
    from repro.net.packet import Flow

    spec = ExperimentSpec(protocol="phost", workload="fixed:1", n_flows=1,
                          topology=TopologyConfig.small(), seed=1)
    ctx = build_simulation(spec)
    env, fabric, collector, _ = ctx.env, ctx.fabric, ctx.collector, ctx.config
    dst = fabric.config.hosts_per_rack  # inter-rack: exercises all hops
    flow = Flow(1, 0, dst, 200 * 1460, 0.0)
    collector.expected_flows = 1
    env.schedule_at(0.0, fabric.hosts[0].agent.start_flow, flow)
    env.run(until=0.01)
    assert flow.completed
    util = fabric.utilization_by_hop(flow.finish)
    assert set(util) == {1, 2, 3, 4}
    # one busy NIC out of 12 -> hop-1 mean ~1/12; core carried the same
    # bytes over 2x-faster links and 6 ports -> much lower
    assert util[1] == pytest.approx(1 / 12, rel=0.25)
    assert util[3] < util[1]
    assert all(0 <= u <= 1.0 for u in util.values())


def test_utilization_requires_positive_duration(fabric):
    with pytest.raises(ValueError):
        fabric.utilization_by_hop(0.0)


def test_reset_counters_clears_port_bytes(fabric):
    port = fabric.hosts[0].port
    port.bytes_sent = 999
    fabric.reset_counters()
    assert port.bytes_sent == 0
