"""Tests for drop stats and the Fig. 7 stability machinery."""

from __future__ import annotations

import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.drops import DropStats
from repro.metrics.stability import (
    StabilitySample,
    StabilityTracker,
    samples_stable,
)
from repro.metrics.throughput import normalized_throughput, per_host_goodput_gbps
from repro.net.packet import Flow
from repro.sim.engine import EventLoop


def test_drop_stats_math():
    stats = DropStats(
        by_hop={1: 10, 2: 1, 3: 2, 4: 7},
        total_drops=20,
        pkts_injected=900,
        pkts_retransmitted=100,
    )
    assert stats.drop_rate == pytest.approx(0.02)
    assert stats.edge_drops == 17
    assert stats.fabric_drops == 3
    names = [name for name, _ in stats.rows()]
    assert names == ["host NIC", "ToR up", "core", "ToR down"]


def test_drop_rate_zero_when_nothing_sent():
    stats = DropStats(by_hop={}, total_drops=0, pkts_injected=0, pkts_retransmitted=0)
    assert stats.drop_rate == 0.0


def test_stability_tracker_samples_on_schedule():
    env = EventLoop()
    c = MetricsCollector()
    c.total_pkts_offered = 100
    tracker = StabilityTracker(env, c, period=1e-3)
    tracker.start()
    f = Flow(1, 0, 1, 1460 * 50, 0.0)
    env.schedule_at(0.5e-3, c.flow_arrived, f, 0.5e-3)
    env.run(until=3.5e-3)
    tracker.stop()
    assert len(tracker.samples) == 3
    # the flow (50 of 100 offered pkts) arrived before the first sample
    assert tracker.samples[0].frac_arrived == pytest.approx(0.5)
    assert tracker.samples[-1].frac_pending == pytest.approx(0.5)


def test_tracker_requires_positive_period():
    with pytest.raises(ValueError):
        StabilityTracker(EventLoop(), MetricsCollector(), period=0)


def _series(pendings, arriveds=None):
    arriveds = arriveds or [i / len(pendings) for i in range(1, len(pendings) + 1)]
    return [
        StabilitySample(time=i * 1.0, frac_arrived=a, frac_pending=p)
        for i, (a, p) in enumerate(zip(arriveds, pendings))
    ]


def test_flat_series_is_stable():
    assert samples_stable(_series([0.05] * 12))


def test_ramp_then_plateau_is_stable():
    """The ramp-up transient must not count against stability."""
    ramp = [0.02 * i for i in range(1, 5)]
    plateau = [0.09, 0.08, 0.09, 0.09, 0.08, 0.09, 0.09, 0.09]
    assert samples_stable(_series(ramp + plateau))


def test_rising_series_is_unstable():
    assert not samples_stable(_series([0.03 * i for i in range(1, 13)]))


def test_drain_after_arrivals_does_not_mask_instability():
    """Pending rising during arrivals, then draining to zero afterwards
    (frac_arrived pinned at 1.0) must still read as unstable."""
    rising = _series([0.05 * i for i in range(1, 9)])
    draining = [
        StabilitySample(time=100 + i, frac_arrived=1.0, frac_pending=0.4 - 0.05 * i)
        for i in range(8)
    ]
    assert not samples_stable(rising + draining)


def test_few_samples_defaults_to_stable():
    assert samples_stable(_series([0.5, 0.9]))


def test_throughput_normalization():
    c = MetricsCollector()
    c.payload_bytes_delivered = 125_000_000  # 1 Gbit
    c.first_arrival = 0.0
    c.last_completion = 1.0
    assert per_host_goodput_gbps(c, n_hosts=10) == pytest.approx(0.1)
    assert normalized_throughput(c, 10, 10e9) == pytest.approx(0.01)
    assert per_host_goodput_gbps(c, 0) == 0.0
