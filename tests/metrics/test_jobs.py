"""Tests for job (coflow) completion metrics (repro.metrics.jobs)."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.jobs import JobRecord, job_completion_rate, job_records, mean_jct
from repro.metrics.records import FlowRecord


def rec(fid, arrival, finish, job=None, size=1460):
    return FlowRecord(
        fid=fid, src=0, dst=1, size_bytes=size, n_pkts=1, tenant=0,
        arrival=arrival, finish=finish, opt=1e-6, request_id=job,
    )


def test_grouping_and_aggregates():
    records = [
        rec(0, 0.10, 0.20, job=1, size=100),
        rec(1, 0.12, 0.30, job=1, size=200),
        rec(2, 0.05, 0.06, job=2),
        rec(3, 0.50, 0.60),        # standalone: ignored
    ]
    jobs = job_records(records)
    assert [j.job_id for j in jobs] == [1, 2]
    j1 = jobs[0]
    assert j1.n_flows == 2 and j1.n_completed == 2
    assert j1.total_bytes == 300
    assert j1.arrival == 0.10 and j1.finish == 0.30
    assert j1.completed and math.isclose(j1.jct, 0.20)


def test_straggler_holds_the_job():
    """One unfinished member ⇒ the whole job is incomplete (finish/jct
    None), even though other members finished."""
    records = [
        rec(0, 0.1, 0.2, job=5),
        rec(1, 0.1, None, job=5),
    ]
    (job,) = job_records(records)
    assert job.n_completed == 1
    assert not job.completed
    assert job.finish is None and job.jct is None


def test_mean_jct_and_completion_rate():
    records = [
        rec(0, 0.0, 0.1, job=0),                  # jct 0.1
        rec(1, 0.0, 0.3, job=1), rec(2, 0.1, 0.2, job=1),  # jct 0.3
        rec(3, 0.0, None, job=2),                 # incomplete
    ]
    assert math.isclose(mean_jct(records), 0.2)
    assert math.isclose(job_completion_rate(records), 2 / 3)


def test_nan_when_no_jobs():
    standalone = [rec(0, 0.0, 0.1)]
    assert math.isnan(mean_jct(standalone))
    assert math.isnan(job_completion_rate(standalone))
    assert math.isnan(mean_jct([]))


def test_incomplete_jobs_excluded_from_mean_jct():
    records = [rec(0, 0.0, 0.5, job=0), rec(1, 0.0, None, job=1)]
    assert math.isclose(mean_jct(records), 0.5)


# Satellite invariant: job metrics are exactly max/sum of member fields.
members = st.lists(
    st.tuples(
        st.floats(0.0, 1.0, allow_nan=False),               # arrival
        st.floats(0.0, 1.0, allow_nan=False),               # fct (finish = arrival + fct)
        st.integers(1, 10**6),                              # size
    ),
    min_size=1,
    max_size=10,
)


@settings(max_examples=50, deadline=None)
@given(members=members)
def test_job_aggregates_are_max_and_sum_of_members(members):
    records = [
        rec(i, a, a + f, job=7, size=s) for i, (a, f, s) in enumerate(members)
    ]
    (job,) = job_records(records)
    assert job.n_flows == len(members)
    assert job.total_bytes == sum(s for _, _, s in members)
    assert job.arrival == min(a for a, _, _ in members)
    assert job.finish == max(a + f for a, f, _ in members)
    assert job.jct == job.finish - job.arrival
    assert job.jct >= 0.0


def test_job_record_is_frozen_value_type():
    a = JobRecord(1, 2, 2, 100, 0.0, 1.0)
    b = JobRecord(1, 2, 2, 100, 0.0, 1.0)
    assert a == b and math.isclose(a.jct, 1.0)
