"""Tests for the windowed throughput/concurrency series."""

from __future__ import annotations

import pytest

from repro.experiments.runner import build_simulation
from repro.experiments.spec import ExperimentSpec
from repro.metrics.timeseries import ThroughputSeries
from repro.net.packet import Flow
from repro.net.topology import TopologyConfig
from repro.sim.engine import EventLoop


def wired_sim(window=50e-6):
    spec = ExperimentSpec(
        protocol="phost", workload="fixed:1", n_flows=1,
        topology=TopologyConfig.small(), seed=1,
    )
    ctx = build_simulation(spec)
    env, fabric, collector, _ = ctx.env, ctx.fabric, ctx.collector, ctx.config
    series = ThroughputSeries(env, window)
    collector.add_observer(series)
    return env, fabric, collector, series


def test_window_validation():
    with pytest.raises(ValueError):
        ThroughputSeries(EventLoop(), 0)


def test_bytes_binned_and_totalled():
    env, fabric, collector, series = wired_sim()
    flows = [Flow(i, i, (i + 4) % 12, 1460 * 5, i * 30e-6) for i in range(4)]
    collector.expected_flows = len(flows)
    for f in flows:
        env.schedule_at(f.arrival, fabric.hosts[f.src].agent.start_flow, f)
    env.run(until=0.05)
    assert all(f.completed for f in flows)
    assert series.total_bytes() == sum(f.size_bytes for f in flows)
    windows = series.windows()
    assert windows == sorted(windows, key=lambda w: w.start)
    assert sum(w.flows_completed for w in windows) == 4
    assert sum(w.flows_arrived for w in windows) == 4
    assert series.peak_goodput_bps() > 0


def test_active_flow_tracking():
    env, fabric, collector, series = wired_sim()
    # two overlapping flows to the same receiver
    a = Flow(1, 0, 5, 1460 * 200, 0.0)
    b = Flow(2, 1, 5, 1460 * 200, 0.0)
    collector.expected_flows = 2
    for f in (a, b):
        env.schedule_at(f.arrival, fabric.hosts[f.src].agent.start_flow, f)
    env.run(until=0.05)
    assert series.peak_active_flows == 2
    assert series.active_flows == 0  # everyone finished


def test_goodput_bounded_by_link_rate():
    env, fabric, collector, series = wired_sim(window=100e-6)
    flow = Flow(1, 0, 5, 1460 * 400, 0.0)
    collector.expected_flows = 1
    env.schedule_at(0.0, fabric.hosts[0].agent.start_flow, flow)
    env.run(until=0.05)
    # one 10G access link feeds the receiver: payload goodput < 10 Gbps
    assert series.peak_goodput_bps() < 10e9
    assert series.peak_goodput_bps() > 5e9  # and the link was actually busy


def test_window_dataclass_goodput():
    from repro.metrics.timeseries import Window

    w = Window(start=0.0, bytes_delivered=125_000, flows_completed=1, flows_arrived=2)
    assert w.goodput_bps(1e-3) == pytest.approx(1e9)
