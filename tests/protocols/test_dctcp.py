"""Behavioural tests for the DCTCP baseline.

DCTCP is the first protocol landed purely through the public plug-in
surfaces — the dataplane-program registry (ECN marking in the fabric)
and the protocol-agent registry (the endpoint) — so these tests also
pin that integration: the fabric really runs the generic engine, marks
really reach the sender as echoes, and the estimator really moves.
"""

from __future__ import annotations

import pytest

from repro.dataplane import ProgramQueue
from repro.experiments.runner import build_simulation
from repro.experiments.spec import ExperimentSpec
from repro.net.packet import Flow
from repro.net.topology import TopologyConfig
from repro.protocols.dctcp.config import DCTCPConfig


def dctcp_sim(config=None, seed=1, buffer_bytes=None):
    spec = ExperimentSpec(
        protocol="dctcp",
        workload="fixed:1460",
        n_flows=1,
        topology=TopologyConfig.small(),
        buffer_bytes=buffer_bytes,
        protocol_config=config,
        seed=seed,
    )
    ctx = build_simulation(spec)
    return ctx.env, ctx.fabric, ctx.collector, ctx.config


def start(env, fabric, collector, flow):
    collector.expected_flows = (collector.expected_flows or 0) + 1
    env.schedule_at(flow.arrival, fabric.hosts[flow.src].agent.start_flow, flow)


def test_fabric_runs_the_generic_engine():
    """No fused specialization exists for the ECN program: every port —
    switch and NIC — must execute a ProgramQueue with stage ledgers."""
    env, fabric, collector, _ = dctcp_sim()
    assert isinstance(fabric.hosts[0].port.queue, ProgramQueue)
    assert isinstance(fabric.tors[0].ports[0].queue, ProgramQueue)
    assert fabric.hosts[0].port.queue.program.name == "dctcp"


def test_lone_flow_near_opt():
    env, fabric, collector, _ = dctcp_sim()
    dst = fabric.config.hosts_per_rack
    flow = Flow(1, 0, dst, 50 * 1460, 0.0)
    start(env, fabric, collector, flow)
    env.run(until=0.05)
    assert flow.completed
    slowdown = (flow.finish - flow.arrival) / fabric.opt_fct(flow.size_bytes, 0, dst)
    assert 1.0 <= slowdown < 1.2


def test_window_limits_inflight():
    env, fabric, collector, _ = dctcp_sim(config=DCTCPConfig(init_cwnd=12))
    flow = Flow(1, 0, 5, 300 * 1460, 0.0)
    start(env, fabric, collector, flow)
    max_queue = {"n": 0}

    def watch():
        max_queue["n"] = max(max_queue["n"], len(fabric.hosts[0].port.queue))
        env.schedule(1e-6, watch)

    env.schedule_at(0.0, watch)
    env.run(until=0.01)
    assert flow.completed
    assert max_queue["n"] <= 12


def test_rto_recovers_forced_loss():
    env, fabric, collector, cfg = dctcp_sim()
    dst = fabric.config.hosts_per_rack
    flow = Flow(1, 0, dst, 30 * 1460, 0.0)
    agent = fabric.hosts[dst].agent
    original = agent._on_data
    swallowed = {"done": False}

    def lossy(pkt):
        if pkt.seq == 7 and not swallowed["done"]:
            swallowed["done"] = True
            return
        original(pkt)

    agent._on_data = lossy
    start(env, fabric, collector, flow)
    env.run(until=0.05)
    assert swallowed["done"]
    assert flow.completed
    assert collector.data_pkts_retransmitted >= 1
    assert fabric.hosts[0].agent.timeouts >= 1


def test_congestion_produces_echoed_marks_and_window_cuts():
    """Incast congestion at one receiver must mark data in the fabric,
    echo the marks on ACKs, raise alpha above its decayed floor, and
    leave the aggressors' windows below the initial window."""
    env, fabric, collector, _ = dctcp_sim(seed=3)
    receiver = 0
    fid = 0
    for sender in range(1, min(6, fabric.config.n_hosts)):
        flow = Flow(fid, sender, receiver, 200 * 1460, 1e-6 * fid)
        start(env, fabric, collector, flow)
        fid += 1
    # Sample sender state mid-run, while the flows still exist.
    seen = {"cwnd": [], "alpha": []}

    def sample():
        for host in fabric.hosts:
            for state in host.agent.src_flows.values():
                seen["cwnd"].append(state.cwnd)
                seen["alpha"].append(state.alpha)
        if not collector.all_complete:
            env.schedule(20e-6, sample)

    env.schedule_at(50e-6, sample)
    env.run(until=0.2)
    assert collector.n_completed == fid
    echoes = sum(h.agent.ce_echoes for h in fabric.hosts)
    delivered = sum(h.agent.ce_delivered for h in fabric.hosts)
    assert delivered > 0, "fabric never marked under incast congestion"
    assert echoes > 0, "marks were delivered but never echoed on ACKs"
    assert min(seen["cwnd"]) < DCTCPConfig().init_cwnd
    assert max(seen["alpha"]) > 0.0


def test_small_flow_below_threshold_sees_no_marks():
    """A flow whose whole window fits under K never queues 9000 bytes
    anywhere — not even at its own NIC — so no packet is marked."""
    env, fabric, collector, _ = dctcp_sim()
    flow = Flow(1, 0, 1, 5 * 1460, 0.0)
    start(env, fabric, collector, flow)
    env.run(until=0.05)
    assert flow.completed
    assert sum(h.agent.ce_echoes for h in fabric.hosts) == 0


def test_duplicate_acks_ignored():
    env, fabric, collector, _ = dctcp_sim()
    flow = Flow(1, 0, 1, 5 * 1460, 0.0)
    start(env, fabric, collector, flow)
    env.run(until=0.01)
    src_agent = fabric.hosts[0].agent
    from repro.net.packet import PacketType, control_packet

    src_agent.on_packet(control_packet(PacketType.ACK, flow, 0, 1, 0, env.now))
    assert flow.completed


def test_alpha_update_matches_the_paper_formula():
    """One observation window with every ACK marked must fold the full
    marked fraction into alpha at gain g and halve-by-alpha the window."""
    from repro.protocols.dctcp.agent import _SrcFlow

    config = DCTCPConfig(init_cwnd=4, gain=0.25, init_alpha=0.5)
    flow = Flow(1, 0, 1, 8 * 1460, 0.0)
    state = _SrcFlow(flow, config)

    class FakeAgent:
        pass

    from repro.protocols.dctcp.agent import DCTCPAgent

    update = DCTCPAgent._update_estimator
    agent = FakeAgent()
    agent.config = config
    for _ in range(4):  # one full window of marked ACKs (cwnd=4)
        update(agent, state, True)
    # alpha <- (1-g)*alpha + g*1.0 = 0.75*0.5 + 0.25 = 0.625
    assert state.alpha == pytest.approx(0.625)
    # cwnd <- cwnd * (1 - alpha/2) = 4 * (1 - 0.3125) = 2.75
    assert state.cwnd == pytest.approx(2.75)
    # a clean window then grows additively
    for _ in range(3):  # ceil(2.75) = 3 ACKs
        update(agent, state, False)
    assert state.cwnd == pytest.approx(3.75)
    assert state.alpha == pytest.approx(0.625 * 0.75)


def test_config_validation():
    with pytest.raises(ValueError):
        DCTCPConfig(init_cwnd=0)
    with pytest.raises(ValueError):
        DCTCPConfig(min_cwnd=0)
    with pytest.raises(ValueError):
        DCTCPConfig(min_cwnd=20, init_cwnd=10)
    with pytest.raises(ValueError):
        DCTCPConfig(gain=0.0)
    with pytest.raises(ValueError):
        DCTCPConfig(init_alpha=1.5)
    with pytest.raises(ValueError):
        DCTCPConfig(rto=0)
    with pytest.raises(ValueError):
        DCTCPConfig(rto_backoff=0.5)
