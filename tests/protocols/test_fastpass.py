"""Behavioural tests for the Fastpass baseline (arbiter + endpoints)."""

from __future__ import annotations

import math

import pytest

from repro.experiments.runner import build_simulation
from repro.experiments.spec import ExperimentSpec
from repro.net.packet import Flow
from repro.net.topology import TopologyConfig
from repro.protocols.fastpass.arbiter import FastpassArbiter
from repro.protocols.fastpass.config import FastpassConfig


def fastpass_sim(seed=1, config=None):
    spec = ExperimentSpec(
        protocol="fastpass",
        workload="fixed:1460",
        n_flows=1,
        topology=TopologyConfig.small(),
        protocol_config=config,
        seed=seed,
    )
    ctx = build_simulation(spec)
    return ctx.env, ctx.fabric, ctx.collector, ctx.config


def start(env, fabric, collector, flow):
    collector.expected_flows = (collector.expected_flows or 0) + 1
    env.schedule_at(flow.arrival, fabric.hosts[flow.src].agent.start_flow, flow)


def test_config_resolution_derives_epoch_and_ctrl_latency():
    topo = TopologyConfig.paper()
    cfg = FastpassConfig.paper_default().resolve(topo)
    assert cfg.slot_time == pytest.approx(1.2e-6)
    assert cfg.epoch_time == pytest.approx(9.6e-6)   # 8 slots
    assert 0 < cfg.ctrl_latency < cfg.epoch_time


def test_short_flow_waits_for_schedule():
    """Unlike pHost, a Fastpass flow cannot send before the arbiter
    grants a slot: FCT >= control latency + epoch alignment."""
    env, fabric, collector, cfg = fastpass_sim()
    flow = Flow(1, 0, 1, 1460, 0.0)
    start(env, fabric, collector, flow)
    env.run(until=0.01)
    assert flow.completed
    fct = flow.finish - flow.arrival
    assert fct >= cfg.ctrl_latency + cfg.slot_time
    # and the first transmission happened exactly on a slot boundary
    assert flow.start_time is not None
    slots = flow.start_time / cfg.slot_time
    assert abs(slots - round(slots)) < 1e-6


def test_one_packet_per_slot_per_source():
    env, fabric, collector, cfg = fastpass_sim()
    flow = Flow(1, 0, 5, 40 * 1460, 0.0)
    start(env, fabric, collector, flow)
    sends = []
    agent = fabric.hosts[0].agent
    original = agent._send_slot

    def spy(fid):
        sends.append(env.now)
        original(fid)

    agent._send_slot = spy
    env.run(until=0.01)
    assert flow.completed
    # distinct, slot-aligned transmit times
    assert len(set(round(t / cfg.slot_time) for t in sends)) == len(sends)


def test_matching_respects_src_dst_exclusivity():
    """Unit-test the arbiter's greedy matching directly: in any slot one
    source sends at most one packet and one destination receives at most
    one (Fastpass's zero-queue invariant)."""
    env, fabric, collector, cfg = fastpass_sim()
    arbiter = fabric.hosts[0].agent.arbiter
    flows = [
        Flow(1, 0, 2, 100 * 1460, 0.0),
        Flow(2, 0, 3, 100 * 1460, 0.0),   # same src as flow 1
        Flow(3, 1, 2, 100 * 1460, 0.0),   # same dst as flow 1
        Flow(4, 4, 5, 100 * 1460, 0.0),   # independent
    ]
    granted = []
    for host in fabric.hosts:
        agent = host.agent
        agent.on_schedule = lambda allocs, a=agent: granted.extend(allocs)
    for f in flows:
        arbiter.request(f, f.n_pkts)
    env.run(until=cfg.epoch_time * 3)
    assert granted
    by_slot = {}
    for slot_time, flow in granted:
        by_slot.setdefault(round(slot_time / cfg.slot_time), []).append(flow)
    for slot, fl in by_slot.items():
        srcs = [f.src for f in fl]
        dsts = [f.dst for f in fl]
        assert len(set(srcs)) == len(srcs)
        assert len(set(dsts)) == len(dsts)


def test_srpt_allocation_prefers_short_flow():
    env, fabric, collector, cfg = fastpass_sim()
    arbiter: FastpassArbiter = fabric.hosts[0].agent.arbiter
    long_flow = Flow(1, 0, 2, 400 * 1460, 0.0)
    short_flow = Flow(2, 3, 2, 2 * 1460, 0.0)  # same destination!
    first_grants = []
    for host in fabric.hosts:
        host.agent.on_schedule = lambda allocs: first_grants.extend(
            f.fid for _, f in allocs
        )
    arbiter.request(long_flow, long_flow.n_pkts)
    arbiter.request(short_flow, short_flow.n_pkts)
    env.run(until=cfg.epoch_time * 2)
    # the destination's first slots go to the shorter flow
    assert first_grants[0] == 2


def test_epoch_never_allocated_twice():
    env, fabric, collector, cfg = fastpass_sim()
    arbiter = fabric.hosts[0].agent.arbiter
    epochs = []
    original = arbiter._compute_epoch

    def spy(k):
        epochs.append(k)
        original(k)

    arbiter._compute_epoch = spy
    flow = Flow(1, 0, 5, 200 * 1460, 0.0)
    start(env, fabric, collector, flow)
    env.run(until=0.01)
    allocated = [k for k in epochs]
    assert len(set(allocated)) == len(allocated) or flow.completed


def test_arbiter_goes_idle_and_wakes_again():
    env, fabric, collector, cfg = fastpass_sim()
    f1 = Flow(1, 0, 1, 1460, 0.0)
    start(env, fabric, collector, f1)
    env.run(until=0.001)
    assert f1.completed
    arbiter = fabric.hosts[0].agent.arbiter
    assert arbiter.pending_demand_pkts() == 0
    # second flow much later: arbiter must wake up from idle
    f2 = Flow(2, 2, 3, 1460, 0.005)
    start(env, fabric, collector, f2)
    env.run(until=0.01)
    assert f2.completed


def test_forced_loss_recovered_by_rerequest():
    env, fabric, collector, cfg = fastpass_sim()
    dst = fabric.config.hosts_per_rack
    flow = Flow(1, 0, dst, 20 * 1460, 0.0)
    agent = fabric.hosts[dst].agent
    original = agent._on_data
    swallowed = {"done": False}

    def lossy(pkt):
        if pkt.seq == 4 and not swallowed["done"]:
            swallowed["done"] = True
            return
        original(pkt)

    agent._on_data = lossy
    start(env, fabric, collector, flow)
    env.run(until=0.05)
    assert swallowed["done"]
    assert flow.completed
    assert collector.data_pkts_retransmitted >= 1


def test_no_drops_under_explicit_scheduling():
    env, fabric, collector, _ = fastpass_sim(seed=5)
    fid = 0
    flows = []
    for sender in range(1, 9):
        flow = Flow(fid, sender, 0, 40 * 1460, 0.0)  # 8-way incast
        flows.append(flow)
        start(env, fabric, collector, flow)
        fid += 1
    env.run(until=0.1)
    assert all(f.completed for f in flows)
    assert fabric.drops_total == 0  # the whole point of Fastpass


def test_config_validation():
    with pytest.raises(ValueError):
        FastpassConfig(epoch_pkts=0)
    with pytest.raises(ValueError):
        FastpassConfig(rto=0)
    with pytest.raises(ValueError):
        FastpassConfig(allocation_policy="round_robin")
    with pytest.raises(ValueError):
        FastpassArbiter(None, None, None, FastpassConfig())  # unresolved
