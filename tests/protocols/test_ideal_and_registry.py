"""Tests for the ideal baseline, the protocol registry, and the fabric
assumptions ablation knobs (oversubscription)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.net.topology import TopologyConfig
from repro.protocols.base import ProtocolSpec
from repro.protocols.registry import available_protocols, get_protocol, register_protocol

TINY = dict(topology=TopologyConfig.small(), max_flow_bytes=120_000, n_flows=120)


def test_registry_contains_all_four():
    assert set(available_protocols()) >= {"phost", "pfabric", "fastpass", "ideal"}
    with pytest.raises(ValueError):
        get_protocol("udp")


def test_register_custom_protocol_roundtrip():
    base = get_protocol("phost")
    custom = ProtocolSpec(
        name="phost-custom-test",
        agent_factory=base.agent_factory,
        config_factory=base.config_factory,
    )
    register_protocol(custom)
    assert get_protocol("phost-custom-test") is custom
    spec = ExperimentSpec(protocol="phost-custom-test", workload="imc10", seed=1, **TINY)
    assert run_experiment(spec).completion_rate == 1.0


def test_ideal_completes_and_bounds_fastpass():
    """The ideal scheduler (epoch=1, zero control latency) must beat the
    paper's Fastpass model — the difference IS Fastpass's overhead."""
    base = dict(workload="imc10", seed=6, load=0.6, **TINY)
    ideal = run_experiment(ExperimentSpec(protocol="ideal", **base))
    fastpass = run_experiment(ExperimentSpec(protocol="fastpass", **base))
    assert ideal.completion_rate == 1.0
    assert ideal.mean_slowdown() < fastpass.mean_slowdown()
    assert ideal.drops.total_drops == 0


def test_ideal_lone_flow_near_opt():
    from repro.experiments.runner import build_simulation
    from repro.net.packet import Flow

    spec = ExperimentSpec(protocol="ideal", workload="fixed:1460", n_flows=1,
                          topology=TopologyConfig.small(), seed=1)
    ctx = build_simulation(spec)
    env, fabric, collector, cfg = ctx.env, ctx.fabric, ctx.collector, ctx.config
    flow = Flow(1, 0, 5, 30 * 1460, 0.0)
    collector.expected_flows = 1
    env.schedule_at(0.0, fabric.hosts[0].agent.start_flow, flow)
    env.run(until=0.01)
    assert flow.completed
    slowdown = (flow.finish - flow.arrival) / fabric.opt_fct(flow.size_bytes, 0, 5)
    # per-slot scheduling adds at most ~a slot of alignment per grant
    assert slowdown < 1.2


def test_oversubscription_slows_things_down():
    base = dict(protocol="phost", workload="imc10", seed=8, load=0.7, **TINY)
    full = run_experiment(ExperimentSpec(**base))
    oversub_topo = replace(TopologyConfig.small(), oversubscription=4.0)
    params = dict(base)
    params["topology"] = oversub_topo
    oversub = run_experiment(ExperimentSpec(**params))
    assert oversub.mean_slowdown() > full.mean_slowdown()
    assert oversub.completion_rate == 1.0


def test_oversubscription_validation():
    with pytest.raises(ValueError):
        TopologyConfig(oversubscription=0.5)
    topo = TopologyConfig(oversubscription=2.0)
    assert topo.core_bps == pytest.approx(20e9)
