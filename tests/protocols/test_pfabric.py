"""Behavioural tests for the pFabric baseline."""

from __future__ import annotations

import pytest

from repro.experiments.runner import build_simulation
from repro.experiments.spec import ExperimentSpec
from repro.net.packet import Flow
from repro.net.queues import PFabricQueue
from repro.net.topology import TopologyConfig
from repro.protocols.pfabric.config import PFabricConfig


def pfabric_sim(config=None, seed=1, buffer_bytes=None):
    spec = ExperimentSpec(
        protocol="pfabric",
        workload="fixed:1460",
        n_flows=1,
        topology=TopologyConfig.small(),
        buffer_bytes=buffer_bytes,
        protocol_config=config,
        seed=seed,
    )
    ctx = build_simulation(spec)
    return ctx.env, ctx.fabric, ctx.collector, ctx.config


def start(env, fabric, collector, flow):
    collector.expected_flows = (collector.expected_flows or 0) + 1
    env.schedule_at(flow.arrival, fabric.hosts[flow.src].agent.start_flow, flow)


def test_nic_uses_pfabric_queue():
    env, fabric, collector, _ = pfabric_sim()
    assert isinstance(fabric.hosts[0].port.queue, PFabricQueue)
    assert isinstance(fabric.tors[0].ports[0].queue, PFabricQueue)


def test_lone_flow_near_opt():
    env, fabric, collector, _ = pfabric_sim()
    dst = fabric.config.hosts_per_rack
    flow = Flow(1, 0, dst, 50 * 1460, 0.0)
    start(env, fabric, collector, flow)
    env.run(until=0.05)
    assert flow.completed
    slowdown = (flow.finish - flow.arrival) / fabric.opt_fct(flow.size_bytes, 0, dst)
    assert 1.0 <= slowdown < 1.1


def test_window_limits_inflight():
    """With cwnd=12, at most 12 packets are unacked at any time; the NIC
    queue of a single backlogged flow never holds more than the window."""
    env, fabric, collector, _ = pfabric_sim(config=PFabricConfig(init_cwnd=12))
    flow = Flow(1, 0, 5, 300 * 1460, 0.0)
    start(env, fabric, collector, flow)
    max_queue = {"n": 0}

    def watch():
        max_queue["n"] = max(max_queue["n"], len(fabric.hosts[0].port.queue))
        env.schedule(1e-6, watch)

    env.schedule_at(0.0, watch)
    env.run(until=0.01)
    assert flow.completed
    assert max_queue["n"] <= 12


def test_rto_recovers_forced_loss():
    env, fabric, collector, cfg = pfabric_sim()
    dst = fabric.config.hosts_per_rack
    flow = Flow(1, 0, dst, 30 * 1460, 0.0)
    agent = fabric.hosts[dst].agent
    original = agent._on_data
    swallowed = {"done": False}

    def lossy(pkt):
        if pkt.seq == 7 and not swallowed["done"]:
            swallowed["done"] = True
            return
        original(pkt)

    agent._on_data = lossy
    start(env, fabric, collector, flow)
    env.run(until=0.05)
    assert swallowed["done"]
    assert flow.completed
    assert collector.data_pkts_retransmitted >= 1
    assert fabric.hosts[0].agent.timeouts >= 1


def test_remaining_priority_decreases_as_flow_progresses():
    env, fabric, collector, _ = pfabric_sim()
    dst = fabric.config.hosts_per_rack
    flow = Flow(1, 0, dst, 40 * 1460, 0.0)
    remaining_seen = []
    agent = fabric.hosts[dst].agent
    original = agent._on_data

    def spy(pkt):
        remaining_seen.append(pkt.remaining)
        original(pkt)

    agent._on_data = spy
    start(env, fabric, collector, flow)
    env.run(until=0.05)
    assert flow.completed
    # stamps shrink over the flow's life (non-strictly: windows batch)
    assert remaining_seen[0] == 40
    assert remaining_seen[-1] < remaining_seen[0]
    assert min(remaining_seen) >= 1


def test_contention_drops_at_edges_not_core():
    """Many senders into one receiver: pFabric sheds load by dropping
    low-priority packets, concentrated at NIC/last-hop (paper Fig 5f)."""
    env, fabric, collector, _ = pfabric_sim(seed=3)
    receiver = 0
    fid = 0
    for sender in range(1, fabric.config.n_hosts):
        for k in range(2):
            flow = Flow(fid, sender, receiver, 80 * 1460, 1e-6 * fid)
            start(env, fabric, collector, flow)
            fid += 1
    env.run(until=0.2)
    assert collector.n_completed == fid
    assert fabric.drops_total > 0
    edge = fabric.drops_by_hop[1] + fabric.drops_by_hop[4]
    core = fabric.drops_by_hop[2] + fabric.drops_by_hop[3]
    assert edge > core


def test_duplicate_acks_ignored():
    env, fabric, collector, _ = pfabric_sim()
    flow = Flow(1, 0, 1, 5 * 1460, 0.0)
    start(env, fabric, collector, flow)
    env.run(until=0.01)
    src_agent = fabric.hosts[0].agent
    # flow is done and deallocated; a stray duplicate ACK must not crash
    from repro.net.packet import PacketType, control_packet

    src_agent.on_packet(control_packet(PacketType.ACK, flow, 0, 1, 0, env.now))
    assert flow.completed


def test_config_validation():
    with pytest.raises(ValueError):
        PFabricConfig(init_cwnd=0)
    with pytest.raises(ValueError):
        PFabricConfig(rto=0)
    with pytest.raises(ValueError):
        PFabricConfig(min_rto_backoff=0.5)
