"""Config-variant behaviour of the baselines + cross-protocol property
tests over randomized micro-scenarios."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.runner import build_simulation, run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.net.packet import Flow
from repro.net.topology import TopologyConfig
from repro.protocols.fastpass.config import FastpassConfig
from repro.protocols.pfabric.config import PFabricConfig


def test_pfabric_tiny_window_still_completes():
    spec = ExperimentSpec(
        protocol="pfabric", workload="imc10", n_flows=60,
        topology=TopologyConfig.small(), max_flow_bytes=100_000,
        protocol_config=PFabricConfig(init_cwnd=2), seed=2,
    )
    result = run_experiment(spec)
    assert result.completion_rate == 1.0
    # a 2-packet window throttles long flows vs the default
    default = run_experiment(spec.variant(protocol_config=None))
    assert result.mean_slowdown() >= default.mean_slowdown()


def test_pfabric_rto_backoff_applies():
    spec = ExperimentSpec(
        protocol="pfabric", workload="fixed:14600", n_flows=20,
        topology=TopologyConfig.small(),
        protocol_config=PFabricConfig(min_rto_backoff=2.0), seed=3,
    )
    assert run_experiment(spec).completion_rate == 1.0


def test_fastpass_fifo_allocation_policy():
    cfg = FastpassConfig(allocation_policy="fifo")
    spec = ExperimentSpec(
        protocol="fastpass", workload="imc10", n_flows=80,
        topology=TopologyConfig.small(), max_flow_bytes=100_000,
        protocol_config=cfg, seed=4,
    )
    fifo = run_experiment(spec)
    srpt = run_experiment(spec.variant(protocol_config=FastpassConfig()))
    assert fifo.completion_rate == 1.0
    # FIFO cannot beat SRPT on mean slowdown (short flows wait behind long)
    assert fifo.mean_slowdown() >= 0.95 * srpt.mean_slowdown()


def test_fastpass_bigger_epoch_hurts_short_flows():
    small = ExperimentSpec(
        protocol="fastpass", workload="imc10", n_flows=100,
        topology=TopologyConfig.small(), max_flow_bytes=50_000,
        protocol_config=FastpassConfig(epoch_pkts=2), seed=5,
    )
    big = small.variant(protocol_config=FastpassConfig(epoch_pkts=16))
    assert run_experiment(big).mean_slowdown() > run_experiment(small).mean_slowdown()


# ----------------------------------------------------------------------
# Property: any random micro-scenario completes with conserved counters
# ----------------------------------------------------------------------

@st.composite
def micro_scenarios(draw):
    n_hosts = 12
    n_flows = draw(st.integers(min_value=1, max_value=20))
    flows = []
    for fid in range(n_flows):
        src = draw(st.integers(0, n_hosts - 1))
        dst = draw(st.integers(0, n_hosts - 2))
        if dst >= src:
            dst += 1
        size = draw(st.integers(1, 60_000))
        arrival = draw(st.floats(0, 200e-6))
        flows.append((fid, src, dst, size, arrival))
    return flows


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(micro_scenarios(), st.sampled_from(["phost", "pfabric", "fastpass"]))
def test_property_random_scenarios_complete(scenario, protocol):
    spec = ExperimentSpec(
        protocol=protocol, workload="fixed:1", n_flows=1,
        topology=TopologyConfig.small(), seed=1,
    )
    ctx = build_simulation(spec)
    env, fabric, collector, _ = ctx.env, ctx.fabric, ctx.collector, ctx.config
    flows = [Flow(fid, src, dst, size, arrival)
             for fid, src, dst, size, arrival in scenario]
    collector.expected_flows = len(flows)
    for f in flows:
        env.schedule_at(f.arrival, fabric.hosts[f.src].agent.start_flow, f)
    env.run(until=1.0)
    assert all(f.completed for f in flows)
    assert collector.data_pkts_injected == sum(f.n_pkts for f in flows)
    assert collector.payload_bytes_delivered == sum(f.size_bytes for f in flows)
    for f in flows:
        opt = fabric.opt_fct(f.size_bytes, f.src, f.dst)
        assert f.finish - f.arrival >= opt * (1 - 1e-9)
