"""Tests for pFabric's probe mode (§4.3 of the pFabric paper)."""

from __future__ import annotations

import pytest

from repro.experiments.runner import build_simulation
from repro.experiments.spec import ExperimentSpec
from repro.net.packet import Flow, PacketType
from repro.net.topology import TopologyConfig
from repro.protocols.pfabric.agent import PROBE_SEQ
from repro.protocols.pfabric.config import PFabricConfig


def sim(config=None):
    spec = ExperimentSpec(
        protocol="pfabric",
        workload="fixed:1460",
        n_flows=1,
        topology=TopologyConfig.small(),
        protocol_config=config or PFabricConfig(probe_after_timeouts=3),
        seed=1,
    )
    ctx = build_simulation(spec)
    return ctx.env, ctx.fabric, ctx.collector, ctx.config


def start(env, fabric, collector, flow):
    collector.expected_flows = (collector.expected_flows or 0) + 1
    env.schedule_at(flow.arrival, fabric.hosts[flow.src].agent.start_flow, flow)


class Blackout:
    """Swallows all DATA toward a host while active."""

    def __init__(self, agent):
        self.active = True
        self.eaten = 0
        original = agent.on_packet

        def lossy(pkt):
            if self.active and pkt.ptype == PacketType.DATA:
                self.eaten += 1
                return
            original(pkt)

        agent.on_packet = lossy


def test_blackout_triggers_probe_mode_and_recovery():
    env, fabric, collector, cfg = sim()
    dst = 5
    blackout = Blackout(fabric.hosts[dst].agent)
    flow = Flow(1, 0, dst, 20 * 1460, 0.0)
    start(env, fabric, collector, flow)
    # lift the blackout after ~20 RTOs: the flow must by then be probing
    env.schedule_at(20 * cfg.rto, setattr, blackout, "active", False)
    env.run(until=0.1)
    src_state = None
    # flow deallocates on completion; inspect counters via collector
    assert flow.completed
    assert blackout.eaten >= cfg.init_cwnd  # the initial window was eaten
    agent = fabric.hosts[0].agent
    assert agent.timeouts >= cfg.probe_after_timeouts


def test_probe_mode_throttles_retransmissions():
    """While blacked out, a probing flow sends ~1 tiny probe per RTO
    instead of a window of 1500B retransmissions."""
    env, fabric, collector, _ = sim(PFabricConfig(probe_after_timeouts=2))
    dst = 5
    blackout = Blackout(fabric.hosts[dst].agent)
    flow = Flow(1, 0, dst, 10 * 1460, 0.0)
    start(env, fabric, collector, flow)
    env.run(until=50 * 45e-6)  # 50 RTOs of blackout
    # retransmissions stopped growing once probing started
    assert not flow.completed
    assert collector.data_pkts_retransmitted <= 4 * 10  # bounded, not 50 windows
    # probes kept flowing (the blackout ate them as DATA)
    assert blackout.eaten > 10


def test_probe_ack_restores_normal_operation():
    env, fabric, collector, cfg = sim(PFabricConfig(probe_after_timeouts=2))
    dst = 5
    blackout = Blackout(fabric.hosts[dst].agent)
    flow = Flow(1, 0, dst, 8 * 1460, 0.0)
    start(env, fabric, collector, flow)
    env.schedule_at(10 * cfg.rto, setattr, blackout, "active", False)
    env.run(until=0.05)
    assert flow.completed
    assert collector.n_completed == 1


def test_probe_seq_never_counts_as_data():
    env, fabric, collector, _ = sim()
    dst = fabric.config.hosts_per_rack
    flow = Flow(1, 0, dst, 3 * 1460, 0.0)
    agent = fabric.hosts[dst].agent
    start(env, fabric, collector, flow)
    env.run(until=0.01)
    delivered_before = collector.data_pkts_delivered
    # inject a stray probe after completion: must only elicit a probe-ACK
    from repro.net.packet import Packet

    probe = Packet(PacketType.DATA, flow, PROBE_SEQ, 0, dst, 40, priority=1)
    agent.on_packet(probe)
    assert collector.data_pkts_delivered == delivered_before


def test_probing_disabled_when_threshold_zero():
    env, fabric, collector, cfg = sim(PFabricConfig(probe_after_timeouts=0))
    dst = 5
    blackout = Blackout(fabric.hosts[dst].agent)
    flow = Flow(1, 0, dst, 6 * 1460, 0.0)
    start(env, fabric, collector, flow)
    env.run(until=20 * cfg.rto)
    # without probe mode, every RTO re-blasts the window
    assert collector.data_pkts_retransmitted > 6 * 5
