"""Chrome trace_event export tests."""

from __future__ import annotations

import json

import pytest

from repro.experiments.defaults import SCALES, make_spec
from repro.experiments.runner import run_experiment
from repro.obs import ObservabilityConfig, validate_chrome_trace


def run_with_trace(tmp_path):
    trace_path = str(tmp_path / "trace.json")
    spec = make_spec("phost", "websearch", "tiny", seed=42).variant(
        observability=ObservabilityConfig(sample_period=None, chrome_trace=trace_path)
    )
    result = run_experiment(spec)
    return result, trace_path


def test_trace_file_is_valid_trace_event_json(tmp_path):
    result, trace_path = run_with_trace(tmp_path)
    events = validate_chrome_trace(trace_path)  # raises on schema problems
    assert events
    assert result.telemetry.chrome_trace_path == trace_path
    assert result.telemetry.chrome_trace_events == len(events)


def test_flow_spans_cover_completed_flows(tmp_path):
    result, trace_path = run_with_trace(tmp_path)
    events = validate_chrome_trace(trace_path)
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == result.n_flows  # finished + force-closed
    finished = [e for e in spans if e["args"]["finished"]]
    assert len(finished) == result.n_completed
    for span in spans:
        assert span["dur"] >= 0.0
        assert span["tid"] == span["args"]["src"]
        # ts is microseconds: a sub-second run stays under 1e6.
        assert 0.0 <= span["ts"] < 1e6


def test_rts_instants_present_for_phost(tmp_path):
    _, trace_path = run_with_trace(tmp_path)
    events = validate_chrome_trace(trace_path)
    instants = [e for e in events if e["ph"] == "i"]
    assert any(e["name"] == "rts" for e in instants)
    for e in instants:
        assert e["s"] == "t"


def test_metadata_names_processes(tmp_path):
    _, trace_path = run_with_trace(tmp_path)
    events = validate_chrome_trace(trace_path)
    meta = [e for e in events if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
    assert names == {"flows", "fabric"}


def test_validator_rejects_bad_files(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("not json {")
    with pytest.raises(ValueError, match="not valid JSON"):
        validate_chrome_trace(str(bad))

    missing = tmp_path / "missing.json"
    missing.write_text(json.dumps({"traceEvents": [{"ph": "X", "ts": 0}]}))
    with pytest.raises(ValueError, match="missing required 'pid'"):
        validate_chrome_trace(str(missing))

    top = tmp_path / "top.json"
    top.write_text(json.dumps(42))
    with pytest.raises(ValueError, match="top level"):
        validate_chrome_trace(str(top))


def test_bare_array_form_accepted(tmp_path):
    path = tmp_path / "arr.json"
    path.write_text(json.dumps([{"ph": "i", "ts": 1, "pid": 2}]))
    assert len(validate_chrome_trace(str(path))) == 1
