"""Event-loop profiler tests.

The acceptance criterion: per-event-type counts sum to exactly the
loop's total dispatched events.
"""

from __future__ import annotations

import pytest

from repro.experiments.defaults import make_spec
from repro.experiments.runner import run_experiment
from repro.obs import EventLoopProfiler, ObservabilityConfig
from repro.sim.engine import EventLoop


def tick():
    pass


def tock():
    pass


def test_counts_by_qualname():
    env = EventLoop()
    profiler = EventLoopProfiler()
    env.set_profiler(profiler)
    for i in range(5):
        env.schedule_at(i * 1.0, tick)
    env.schedule_at(2.5, tock)
    env.run()
    stats = profiler.by_type()
    assert stats["tick"]["count"] == 5
    assert stats["tock"]["count"] == 1
    assert profiler.total_events == 6
    assert stats["tick"]["first_sim_time"] == 0.0
    assert stats["tick"]["last_sim_time"] == 4.0


def test_counts_sum_to_loop_total_on_real_run():
    spec = make_spec("phost", "websearch", "tiny", seed=42).variant(
        observability=ObservabilityConfig(sample_period=None, profile=True)
    )
    result = run_experiment(spec)
    profile = result.telemetry.profile
    assert profile is not None
    counted = sum(stats["count"] for stats in profile["by_type"].values())
    assert counted == profile["total_events"] == result.events_processed
    assert profile["wall_self_seconds"] > 0.0


def test_removing_profiler_restores_plain_loop():
    env = EventLoop()
    profiler = EventLoopProfiler()
    env.set_profiler(profiler)
    env.schedule_at(0.0, tick)
    env.run()
    assert profiler.total_events == 1
    env.set_profiler(None)
    env.schedule_at(1.0, tick)
    env.run()
    assert profiler.total_events == 1  # unprofiled events not recorded
    assert env.events_processed == 2


def test_heartbeat_emission_and_eta():
    beats = []
    # Interval 0.0: every 256-event check fires a heartbeat.
    profiler = EventLoopProfiler(
        heartbeat_wall_seconds=0.0, on_heartbeat=beats.append
    )
    env = EventLoop()
    env.set_profiler(profiler)
    for i in range(600):
        env.schedule_at(i * 1e-6, tick)
    env.run(until=1e-3)
    assert profiler.heartbeats_emitted == len(beats) == 2  # at 256 and 512
    hb = beats[-1]
    assert hb.events_total == 512
    assert hb.sim_now == pytest.approx(511e-6)
    assert hb.eta_seconds is not None and hb.eta_seconds >= 0.0
    assert "ev/s" in str(hb)


def test_negative_heartbeat_interval_rejected():
    with pytest.raises(ValueError):
        EventLoopProfiler(heartbeat_wall_seconds=-1.0)


def test_report_and_ranking():
    env = EventLoop()
    profiler = EventLoopProfiler()
    env.set_profiler(profiler)
    for i in range(10):
        env.schedule_at(float(i), tick)
    env.schedule_at(0.5, tock)
    env.run()
    ranked = profiler.ranked()
    assert {row["event"] for row in ranked} == {"tick", "tock"}
    assert ranked[0]["self_seconds"] >= ranked[-1]["self_seconds"]
    text = profiler.report()
    assert "tick" in text and "11 events" in text
    hist = profiler.sim_time_histogram("tick")
    assert hist is not None and hist.count == 10


def test_hotspots_share_and_per_event_cost():
    env = EventLoop()
    profiler = EventLoopProfiler()
    env.set_profiler(profiler)
    for i in range(8):
        env.schedule_at(float(i), tick)
    env.schedule_at(0.5, tock)
    env.run()
    spots = profiler.hotspots(top=2)
    assert len(spots) == 2
    # shares are fractions of the total self-time, hottest first
    assert spots[0]["self_seconds"] >= spots[1]["self_seconds"]
    for row in spots:
        assert 0.0 <= row["share"] <= 1.0
        assert row["mean_seconds"] * row["count"] == pytest.approx(
            row["self_seconds"]
        )
    assert sum(r["share"] for r in profiler.hotspots(top=10)) == pytest.approx(1.0)
    text = profiler.report()
    assert "hotspot #1:" in text and "% of self-time" in text


def test_hotspots_empty_profile():
    profiler = EventLoopProfiler()
    assert profiler.hotspots() == []
    assert "hotspot" not in profiler.report()
