"""Regression diffs and the HTML dashboard (repro.obs.report)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.net.topology import TopologyConfig
from repro.obs import ObservabilityConfig
from repro.obs.report import (
    DEFAULT_THRESHOLDS,
    Threshold,
    diff_entries,
    render_dashboard,
    validate_dashboard,
)
from repro.obs.store import LedgerEntry, RunLedger


# ----------------------------------------------------------------------
# Diff threshold logic (synthetic entries — no simulation needed)
# ----------------------------------------------------------------------

def _entry(metrics, spec_hash="a" * 64, digest="b" * 64, seed=42):
    return LedgerEntry(
        Path("/nonexistent"),
        {
            "meta": {
                "spec_hash": spec_hash,
                "family_hash": "f" * 64,
                "run_digest": digest,
                "protocol": "phost",
                "workload": "websearch",
                "load": 0.6,
                "seed": seed,
            },
            "metrics": metrics,
        },
    )


BASE_METRICS = {
    "mean_slowdown": 2.0,
    "p99_slowdown": 8.0,
    "nfct": 1.5,
    "completion_rate": 1.0,
    "goodput_gbps_per_host": 0.8,
    "drop_rate": 0.01,
    "duration": 0.02,
    "events_processed": 1000,
    "wall_seconds": 1.0,
}


def _diff(changes, *, same_spec=True):
    candidate = dict(BASE_METRICS, **changes)
    baseline = _entry(BASE_METRICS)
    other = _entry(
        candidate,
        spec_hash=("a" if same_spec else "c") * 64,
        digest="d" * 64,
        seed=42 if same_spec else 43,
    )
    return diff_entries(baseline, other)


def test_identical_metrics_pass():
    diff = _diff({})
    assert diff.ok
    assert not diff.regressions


def test_slowdown_regression_beyond_threshold_fails():
    diff = _diff({"mean_slowdown": 2.0 * 1.30})  # > 25% worse
    assert not diff.ok
    assert [r.metric for r in diff.regressions] == ["mean_slowdown"]


def test_slowdown_within_threshold_passes():
    assert _diff({"mean_slowdown": 2.0 * 1.20}).ok


def test_improvement_never_regresses():
    assert _diff({"mean_slowdown": 1.0, "drop_rate": 0.0}).ok


def test_lower_is_worse_direction_for_completion_rate():
    diff = _diff({"completion_rate": 0.95})  # dropped 0.05 > 0.02 abs
    assert [r.metric for r in diff.regressions] == ["completion_rate"]
    # Rising completion is an improvement, not a regression.
    base = _entry(dict(BASE_METRICS, completion_rate=0.9))
    cand = _entry(dict(BASE_METRICS, completion_rate=1.0), digest="d" * 64)
    assert diff_entries(base, cand).ok


def test_events_pin_enforced_only_within_same_spec():
    same = _diff({"events_processed": 1001}, same_spec=True)
    assert [r.metric for r in same.regressions] == ["events_processed"]
    cross = _diff({"events_processed": 1001}, same_spec=False)
    assert cross.ok
    row = next(r for r in cross.rows if r.metric == "events_processed")
    assert "not pinned" in row.note


def test_wall_clock_is_advisory_only():
    diff = _diff({"wall_seconds": 2.0})  # 2x slower
    assert diff.ok  # advisory rows never gate
    row = next(r for r in diff.rows if r.metric == "wall_seconds")
    assert row.regressed and row.advisory


def test_missing_metric_is_reported_not_regressed():
    candidate = dict(BASE_METRICS)
    del candidate["nfct"]
    diff = diff_entries(_entry(BASE_METRICS), _entry(candidate, digest="d" * 64))
    row = next(r for r in diff.rows if r.metric == "nfct")
    assert row.note == "missing" and not row.regressed
    assert diff.ok


def test_custom_threshold_overrides_defaults():
    tight = [Threshold("mean_slowdown", rel=0.01)]
    diff = diff_entries(
        _entry(BASE_METRICS),
        _entry(dict(BASE_METRICS, mean_slowdown=2.1), digest="d" * 64),
        thresholds=tight,
    )
    assert not diff.ok


def test_default_thresholds_cover_the_bench_gate():
    names = {t.metric for t in DEFAULT_THRESHOLDS}
    # The bench --check gate's two signals: wall clock and the event pin.
    assert {"wall_seconds", "events_processed"} <= names


def test_summary_mentions_verdict():
    text = _diff({"mean_slowdown": 3.0}).summary()
    assert "REGRESSED" in text and "mean_slowdown" in text


# ----------------------------------------------------------------------
# Dashboard (rendered from a real two-seed tiny ledger)
# ----------------------------------------------------------------------

def _tiny_spec(seed, chrome_path=None):
    return ExperimentSpec(
        protocol="phost",
        workload="fixed:20000",
        n_flows=8,
        topology=TopologyConfig.small(),
        seed=seed,
        observability=ObservabilityConfig(
            sample_period=50e-6,
            chrome_trace=None if chrome_path is None else str(chrome_path),
        ),
    )


@pytest.fixture(scope="module")
def two_seed_ledger(tmp_path_factory):
    root = tmp_path_factory.mktemp("ledger-dash")
    ledger = RunLedger(root / "ledger")
    for seed in (42, 43):
        trace = root / f"trace-{seed}.json"
        ledger.put(run_experiment(_tiny_spec(seed, chrome_path=trace)))
    return ledger


def test_dashboard_renders_and_validates(two_seed_ledger, tmp_path):
    out = render_dashboard(two_seed_ledger, tmp_path / "dash.html")
    assert validate_dashboard(out) == []
    html = out.read_text()
    assert "<svg" in html  # at least one chart panel rendered
    assert 'data-points="0"' not in html
    assert "Cross-run regression diffs" in html
    assert "Per-port queue depth" in html


def test_dashboard_cross_seed_diff_shows_no_unexpected_regressions(
    two_seed_ledger, tmp_path
):
    # The ISSUE's acceptance check: two seeds of the same tiny spec must
    # diff clean under the default thresholds.
    families = [m for m in two_seed_ledger.families().values() if len(m) >= 2]
    assert families
    for members in families:
        diff = diff_entries(members[-2], members[-1])
        assert diff.ok, diff.summary()
    html = render_dashboard(two_seed_ledger, tmp_path / "dash.html").read_text()
    assert "no unexpected regressions" in html


def test_validate_flags_missing_artifact(two_seed_ledger, tmp_path):
    out = render_dashboard(two_seed_ledger, tmp_path / "dash.html")
    # Remove one referenced chrome trace: validation must notice.
    entry = two_seed_ledger.entries()[0]
    victims = [a for a in entry.artifacts if a.endswith(".json")]
    assert victims
    Path(victims[0]).unlink()
    problems = validate_dashboard(out)
    assert any("artifact missing" in p for p in problems)


def test_validate_flags_empty_dashboard(tmp_path):
    empty = RunLedger(tmp_path / "empty-ledger")
    out = render_dashboard(empty, tmp_path / "dash.html")
    problems = validate_dashboard(out)
    assert any("no panels or tables" in p for p in problems)


def test_validate_flags_missing_file(tmp_path):
    problems = validate_dashboard(tmp_path / "never-rendered.html")
    assert problems and "does not exist" in problems[0]
