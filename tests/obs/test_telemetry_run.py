"""End-to-end telemetry: the fig9c incast acceptance check and the CLI.

The acceptance criterion from the issue: a tiny fig9c incast run with
sampling enabled must emit a queue-depth time series in which the
bottleneck destination port's sampled occupancy visibly peaks.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import main
from repro.experiments.defaults import SCALES
from repro.experiments.runner import run_incast
from repro.obs import ObservabilityConfig, validate_chrome_trace


@pytest.fixture(scope="module")
def incast_report():
    result = run_incast(
        "phost",
        n_senders=9,
        total_bytes=1_000_000,
        n_requests=3,
        topology=SCALES["tiny"].topology,
        seed=42,
        observability=ObservabilityConfig(sample_period=20e-6),
    )
    assert result.telemetry is not None
    return result.telemetry


def test_incast_sampler_took_samples(incast_report):
    assert incast_report.samples_taken >= 10
    assert incast_report.n_instruments > 0
    series = incast_report.series
    assert len(series.times) == incast_report.samples_taken


def test_incast_bottleneck_port_peaks_at_destination(incast_report):
    series = incast_report.series
    qlen_cols = [n for n in series.names() if n.startswith("port.qlen_bytes{")]
    assert qlen_cols, "no queue-depth columns sampled"
    peaks = {name: series.peak(name)[1] for name in qlen_cols}
    hottest = max(peaks, key=lambda n: peaks[n])
    # 9 senders converge on one receiver: the deepest queue in the whole
    # fabric must be a ToR-down (hop 4) port, and the pile-up must be
    # visible — several packets deep, not a one-packet blip.
    assert "hop=4" in hottest, f"bottleneck not at destination: {hottest}"
    assert peaks[hottest] >= 3 * 1500, f"no visible peak: {peaks[hottest]}"
    # The destination port dwarfs every sender-side (hop 1) queue.
    hop1_max = max(
        (v for n, v in peaks.items() if "hop=1" in n), default=0.0
    )
    assert peaks[hottest] > hop1_max


def test_incast_high_water_gauge_agrees_with_series(incast_report):
    series = incast_report.series
    hottest = max(
        (n for n in series.names() if n.startswith("port.qlen_bytes{")),
        key=lambda n: series.peak(n)[1],
    )
    hwm_col = hottest.replace("port.qlen_bytes{", "port.qlen_max_bytes{")
    # The true high-water mark can exceed any sampled instant, never the
    # other way around.
    assert series.peak(hwm_col)[1] >= series.peak(hottest)[1]


def test_cli_full_observability_run(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    out_dir = tmp_path / "obs"
    rc = main(
        [
            "--run", "phost", "websearch",
            "--scale", "tiny",
            "--obs",
            "--profile",
            "--chrome-trace", str(trace),
            "--obs-out", str(out_dir),
            "--json",
        ]
    )
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    obs = payload["obs"]
    assert obs["samples"] >= 1
    assert obs["n_instruments"] > 0
    assert obs["profile"]["total_events"] > 0
    assert obs["chrome_trace"] == str(trace)
    assert validate_chrome_trace(str(trace))
    written = {name.rsplit("/", 1)[-1] for name in obs["written"]}
    assert {"series.jsonl", "profile.txt", "summary.txt"} <= written
    # Every series row is one JSON object keyed by instrument name.
    lines = (out_dir / "series.jsonl").read_text().splitlines()
    assert len(lines) == obs["samples"]
    first = json.loads(lines[0])
    assert "t" in first and any(k.startswith("flows.") for k in first)


def test_cli_text_mode_prints_summary(capsys):
    rc = main(["--run", "phost", "websearch", "--scale", "tiny", "--obs"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "telemetry" in out.lower()
    assert "samples" in out.lower()
