"""Overhead guard: telemetry must not perturb or slow the simulation.

Two contracts from the issue:

* A run with the instrument registry populated but no sampler attached
  must produce a *byte-identical* ``run_digest`` to a bare run — the
  registry is pull-based, so registering gauges consumes no randomness
  and schedules no events.
* Wall-clock cost of the dormant registry stays under 5% on a tiny run.
"""

from __future__ import annotations

import time

from repro.experiments.defaults import make_spec
from repro.experiments.runner import run_experiment
from repro.obs import ObservabilityConfig
from repro.validate import run_digest

# Registry on, every sink off: no sampler, no profiler, no trace file.
DORMANT = ObservabilityConfig(sample_period=None)


def _bare():
    return run_experiment(make_spec("phost", "websearch", "tiny", seed=42))


def _instrumented(config=DORMANT):
    spec = make_spec("phost", "websearch", "tiny", seed=42)
    return run_experiment(spec.variant(observability=config))


def test_dormant_registry_is_byte_identical():
    assert run_digest(_instrumented()) == run_digest(_bare())


def test_sampling_does_not_move_the_digest():
    # The sampler only *reads* gauges; even with it running the flow
    # records, drop ledger, and counters must not budge.
    sampled = _instrumented(ObservabilityConfig(sample_period=50e-6))
    assert run_digest(sampled) == run_digest(_bare())
    assert sampled.telemetry.samples_taken >= 2


def test_dormant_registry_wall_clock_overhead_under_5_percent():
    # Warm both paths once (imports, allocator), then take min-of-5
    # interleaved so scheduler noise hits both variants equally.
    _bare()
    _instrumented()
    bare_best = inst_best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        _bare()
        bare_best = min(bare_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        _instrumented()
        inst_best = min(inst_best, time.perf_counter() - t0)
    # 5% relative budget plus a small absolute floor so a sub-100ms run
    # can't fail on timer granularity alone.
    assert inst_best <= bare_best * 1.05 + 0.02, (
        f"dormant registry cost too much: bare={bare_best:.4f}s "
        f"instrumented={inst_best:.4f}s"
    )
