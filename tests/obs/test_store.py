"""The content-addressed run ledger (repro.obs.store).

Pins the persistence contracts the dashboard depends on:

* ColumnarSeries round-trips byte-identically (NaN included);
* spec hashing is stable, observation-blind, and seed-sensitive —
  while the family hash is seed-blind;
* the ledger is idempotent per ``(spec_hash, run_digest)`` key and
  refuses to overwrite mismatched content under one key;
* results are stamped with self-describing run metadata.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.metrics.timeseries import ColumnarSeries
from repro.net.topology import TopologyConfig
from repro.obs import ObservabilityConfig
from repro.obs.store import (
    LedgerCollisionError,
    RunLedger,
    deserialize_series,
    family_hash,
    result_metrics,
    serialize_series,
    spec_hash,
)
from repro.validate import run_digest


def _tiny_spec(**overrides) -> ExperimentSpec:
    base = dict(
        protocol="phost",
        workload="fixed:20000",
        n_flows=8,
        topology=TopologyConfig.small(),
        seed=42,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


@pytest.fixture(scope="module")
def observed_result():
    return run_experiment(
        _tiny_spec(observability=ObservabilityConfig(sample_period=50e-6))
    )


# ----------------------------------------------------------------------
# ColumnarSeries persistence
# ----------------------------------------------------------------------

def test_series_round_trip_byte_identical():
    series = ColumnarSeries()
    series.append(0.0, {"a": 1.0})
    series.append(1e-4, {"a": 2.5, "b": 0.125})  # 'a' backfilled with NaN
    series.append(2e-4, {"b": 7.0})
    blob = serialize_series(series)
    again = serialize_series(deserialize_series(blob))
    assert again == blob


def test_series_round_trip_preserves_nan_cells():
    series = ColumnarSeries()
    series.append(0.0, {"x": 1.0})
    series.append(1.0, {"y": 2.0})
    loaded = deserialize_series(serialize_series(series))
    assert math.isnan(loaded.columns["y"][0])
    assert math.isnan(loaded.columns["x"][1])
    assert loaded.times == series.times
    assert loaded.names() == series.names()


def test_series_round_trip_of_real_run(observed_result):
    series = observed_result.telemetry.series
    blob = serialize_series(series)
    assert serialize_series(deserialize_series(blob)) == blob


def test_series_deserialize_rejects_ragged_columns():
    with pytest.raises(ValueError, match="cells"):
        deserialize_series(
            json.dumps(
                {
                    "schema": "columnar-series/v1",
                    "times": [0.0, 1.0],
                    "columns": {"a": [1.0]},
                }
            )
        )


# ----------------------------------------------------------------------
# Spec hashing
# ----------------------------------------------------------------------

def test_spec_hash_stable_and_seed_sensitive():
    assert spec_hash(_tiny_spec()) == spec_hash(_tiny_spec())
    assert spec_hash(_tiny_spec()) != spec_hash(_tiny_spec(seed=43))
    assert spec_hash(_tiny_spec()) != spec_hash(_tiny_spec(load=0.7))


def test_spec_hash_blind_to_observation_and_label():
    bare = _tiny_spec()
    observed = _tiny_spec(
        observability=ObservabilityConfig(sample_period=50e-6), label="x"
    )
    assert spec_hash(bare) == spec_hash(observed)


def test_family_hash_is_seed_blind():
    assert family_hash(_tiny_spec()) == family_hash(_tiny_spec(seed=43))
    assert family_hash(_tiny_spec()) != family_hash(_tiny_spec(load=0.7))


# ----------------------------------------------------------------------
# Run metadata stamping (the runner does this for every telemetry run)
# ----------------------------------------------------------------------

def test_runner_stamps_obsreport_meta(observed_result):
    meta = observed_result.telemetry.meta
    assert meta is not None
    assert meta["spec_hash"] == spec_hash(observed_result.spec)
    assert meta["seed"] == 42
    assert meta["protocol"] == "phost"
    assert meta["events_processed"] == observed_result.events_processed
    assert meta["wall_seconds"] == observed_result.wall_seconds
    assert "git_revision" in meta


# ----------------------------------------------------------------------
# The ledger
# ----------------------------------------------------------------------

def test_ledger_put_and_entry_content(tmp_path, observed_result):
    ledger = RunLedger(tmp_path / "ledger")
    entry = ledger.put(observed_result)
    assert entry.spec_hash == spec_hash(observed_result.spec)
    assert entry.run_digest == run_digest(observed_result)
    assert entry.metrics["n_flows"] == observed_result.n_flows
    assert entry.metrics["events_processed"] == observed_result.events_processed
    assert entry.has_series
    assert serialize_series(entry.load_series()) == serialize_series(
        observed_result.telemetry.series
    )
    assert ledger.get(entry.key).key == entry.key


def test_ledger_same_run_same_key_idempotent(tmp_path, observed_result):
    ledger = RunLedger(tmp_path / "ledger")
    first = ledger.put(observed_result)
    entry_bytes = (first.path / "entry.json").read_bytes()
    second = ledger.put(observed_result)
    assert second.key == first.key
    assert (second.path / "entry.json").read_bytes() == entry_bytes
    assert len(ledger.entries()) == 1


def test_ledger_detects_content_collision(tmp_path, observed_result):
    ledger = RunLedger(tmp_path / "ledger")
    entry = ledger.put(observed_result)
    # Corrupt the stored spec under the same key: content-addressing is
    # violated, so a re-put must refuse rather than silently overwrite.
    doc = json.loads((entry.path / "entry.json").read_text())
    doc["spec"]["seed"] = 999
    (entry.path / "entry.json").write_text(json.dumps(doc))
    with pytest.raises(LedgerCollisionError):
        ledger.put(observed_result)


def test_ledger_families_group_across_seeds(tmp_path):
    ledger = RunLedger(tmp_path / "ledger")
    for seed in (42, 43):
        ledger.put(
            run_experiment(
                _tiny_spec(
                    seed=seed,
                    observability=ObservabilityConfig(sample_period=50e-6),
                )
            )
        )
    families = ledger.families()
    assert len(families) == 1
    members = next(iter(families.values()))
    assert {m.meta["seed"] for m in members} == {42, 43}
    assert len({m.spec_hash for m in members}) == 2


def test_ledger_bench_reports_append_in_order(tmp_path):
    ledger = RunLedger(tmp_path / "ledger")
    ledger.put_bench({"scale": "small", "date": "2026-08-08", "instances": {}})
    ledger.put_bench({"scale": "medium", "date": "2026-08-08", "instances": {}})
    ledger.put_bench({"scale": "small", "date": "2026-08-09", "instances": {}})
    reports = ledger.bench_reports()
    assert [r["scale"] for r in reports] == ["small", "medium", "small"]
    assert ledger.latest_bench("medium")["date"] == "2026-08-08"
    assert ledger.latest_bench("small")["date"] == "2026-08-09"
    assert ledger.latest_bench("large") is None


def test_result_metrics_are_strict_json(observed_result):
    metrics = result_metrics(observed_result)
    # json.dumps with allow_nan=False rejects NaN/inf — the store's
    # contract is that every stored number is strict JSON.
    json.dumps(metrics, allow_nan=False)
    assert metrics["completion_rate"] == 1.0
