"""Sampler scheduling edge cases (the satellite-task checklist).

Each case must yield a well-formed (possibly empty) series — never a
crash, never a timer left dangling in the event loop.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.experiments.runner import run_flow_list
from repro.experiments.spec import ExperimentSpec
from repro.net.topology import TopologyConfig
from repro.obs import InstrumentRegistry, ObservabilityConfig, PeriodicSampler
from repro.sim.engine import EventLoop


def make_ctx():
    """A minimal context: the sampler only touches env and obs."""
    env = EventLoop()
    return SimpleNamespace(env=env, obs=InstrumentRegistry())


def test_parameter_validation():
    with pytest.raises(ValueError):
        PeriodicSampler(0.0)
    with pytest.raises(ValueError):
        PeriodicSampler(1.0, burn_in=-1.0)


def test_periodic_sampling_and_terminal_sample():
    ctx = make_ctx()
    ticks = {"n": 0}
    ctx.obs.gauge("x", lambda: ticks["n"])
    sampler = PeriodicSampler(period=1.0).bind(ctx)
    ctx.env.schedule_at(2.5, lambda: ticks.__setitem__("n", 5))
    ctx.env.run(until=3.5)
    sampler.finalize(ctx)
    # Ticks at t=0,1,2,3 plus the terminal sample at 3.5.
    assert sampler.series.times == [0.0, 1.0, 2.0, 3.0, 3.5]
    assert sampler.series.column("x") == [0.0, 0.0, 0.0, 5.0, 5.0]
    assert not sampler.active
    assert ctx.env.pending_count() == 0


def test_period_longer_than_run():
    ctx = make_ctx()
    ctx.obs.gauge("x", lambda: 1.0)
    sampler = PeriodicSampler(period=100.0, burn_in=50.0).bind(ctx)
    ctx.env.schedule_at(1.0, lambda: None)
    ctx.env.run(until=2.0)
    sampler.finalize(ctx)
    # The first tick (at burn_in=50) never fired; no terminal sample
    # either since the run ended before burn-in.
    assert len(sampler.series) == 0
    assert sampler.series.names() == []
    assert not sampler.active
    assert ctx.env.pending_count() == 0  # no dangling timer


def test_burn_in_skips_early_samples_but_terminal_respects_it():
    ctx = make_ctx()
    ctx.obs.gauge("x", lambda: 1.0)
    sampler = PeriodicSampler(period=1.0, burn_in=2.5).bind(ctx)
    ctx.env.schedule_at(4.2, lambda: None)
    ctx.env.run(until=4.2)
    sampler.finalize(ctx)
    # First tick at 2.5 (burn-in), then 3.5, then terminal at 4.2.
    assert sampler.series.times == [2.5, 3.5, 4.2]
    assert ctx.env.pending_count() == 0


def test_mid_run_attach_starts_at_now():
    ctx = make_ctx()
    ctx.obs.gauge("x", lambda: 1.0)
    ctx.env.schedule_at(10.0, lambda: None)
    ctx.env.run(until=10.0)
    sampler = PeriodicSampler(period=1.0).bind(ctx)  # attached at t=10
    ctx.env.schedule_at(12.0, lambda: None)
    ctx.env.run(until=12.0)
    sampler.finalize(ctx)
    assert sampler.series.times == [10.0, 11.0, 12.0]
    assert ctx.env.pending_count() == 0


def test_stop_is_idempotent_and_cancels_timer():
    ctx = make_ctx()
    sampler = PeriodicSampler(period=1.0).bind(ctx)
    assert sampler.active
    sampler.stop()
    sampler.stop()
    assert not sampler.active
    assert ctx.env.pending_count() == 0


def test_zero_flow_run_yields_well_formed_series():
    spec = ExperimentSpec(
        protocol="phost",
        workload="fixed:1",  # ignored by run_flow_list
        n_flows=1,
        topology=TopologyConfig.small(),
        observability=ObservabilityConfig(sample_period=0.01),
        seed=7,
    )
    result = run_flow_list(spec, [])
    report = result.telemetry
    assert report is not None
    assert report.samples_taken >= 1  # first tick at t=0 plus terminal
    series = report.series
    assert all(len(col) == len(series.times) for col in series.columns.values())
    # Nothing ever ran, so activity gauges stay flat at zero.
    assert all(v == 0.0 for v in series.column("flows.active"))
