"""Unit tests for the instrument registry."""

from __future__ import annotations

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    InstrumentRegistry,
    instrument_key,
)


def test_key_labels_sorted_canonically():
    assert instrument_key("port.qlen", {}) == "port.qlen"
    assert (
        instrument_key("port.qlen", {"port": 3, "node": "core0"})
        == "port.qlen{node=core0,port=3}"
    )


def test_counter_get_or_create_same_object():
    reg = InstrumentRegistry()
    a = reg.counter("drops", hop=4)
    b = reg.counter("drops", hop=4)
    assert a is b
    a.inc()
    b.inc(2)
    assert a.read() == 3.0


def test_kind_mismatch_raises():
    reg = InstrumentRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.gauge("x", lambda: 0.0)
    with pytest.raises(ValueError):
        reg.histogram("x")


def test_gauge_is_pull_based():
    reg = InstrumentRegistry()
    calls = []

    def fn():
        calls.append(1)
        return 7.0

    gauge = reg.gauge("qlen", fn, port="h0.nic")
    assert calls == []  # registration never evaluates
    assert gauge.read() == 7.0
    assert len(calls) == 1


def test_gauge_reregistration_replaces_callable():
    reg = InstrumentRegistry()
    reg.gauge("qlen", lambda: 1.0)
    g = reg.gauge("qlen", lambda: 2.0)
    assert g.read() == 2.0
    assert len(reg) == 1


def test_histogram_log2_buckets_and_stats():
    reg = InstrumentRegistry()
    h = reg.histogram("lat")
    for v in (0.75, 1.5, 1.9, 3.0, 0.0, -1.0):
        h.observe(v)
    d = h.to_dict()
    assert d["count"] == 6
    assert d["buckets"]["<=0"] == 2
    assert d["buckets"]["2^0"] == 1  # 0.75 in [0.5, 1)
    assert d["buckets"]["2^1"] == 2  # 1.5, 1.9 in [1, 2)
    assert d["buckets"]["2^2"] == 1  # 3.0 in [2, 4)
    assert d["min"] == -1.0 and d["max"] == 3.0
    assert h.mean == pytest.approx(sum((0.75, 1.5, 1.9, 3.0, 0.0, -1.0)) / 6)


def test_snapshot_sorted_and_typed():
    reg = InstrumentRegistry()
    reg.counter("b").inc(5)
    reg.gauge("a", lambda: 1.5)
    h = reg.histogram("c")
    h.observe(2.0)
    snap = reg.snapshot()
    assert list(snap) == ["a", "b", "c"]  # canonical key order
    assert snap == {"a": 1.5, "b": 5.0, "c": 1.0}  # histogram reads count


def test_queries():
    reg = InstrumentRegistry()
    reg.counter("port.drops", hop=1)
    reg.counter("port.drops", hop=4)
    reg.gauge("flows.active", lambda: 0)
    assert "port.drops{hop=4}" in reg
    assert reg.get("port.drops", hop=4) is not None
    assert reg.get("port.drops", hop=9) is None
    assert [i.key for i in reg.with_prefix("port.")] == [
        "port.drops{hop=1}",
        "port.drops{hop=4}",
    ]
    assert len(reg.instruments()) == 3
