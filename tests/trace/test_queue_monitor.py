"""Tests for queue-occupancy monitoring — including the §2.3 claim that
contention lives at the edge, not the core."""

from __future__ import annotations

import pytest

from repro.experiments.runner import build_simulation
from repro.experiments.spec import ExperimentSpec
from repro.net.packet import Flow
from repro.net.topology import TopologyConfig
from repro.sim.engine import EventLoop
from repro.trace import QueueMonitor


def sim(protocol="phost"):
    spec = ExperimentSpec(
        protocol=protocol,
        workload="fixed:1460",
        n_flows=1,
        topology=TopologyConfig.small(),
        seed=1,
    )
    ctx = build_simulation(spec)
    return ctx.env, ctx.fabric, ctx.collector, ctx.config


def test_monitor_validates_inputs():
    env = EventLoop()
    with pytest.raises(ValueError):
        QueueMonitor(env, [], period=1e-6)
    env2, fabric, collector, _ = sim()
    with pytest.raises(ValueError):
        QueueMonitor(env2, [fabric.hosts[0].port], period=0)


def test_over_fabric_covers_all_port_classes():
    env, fabric, collector, _ = sim()
    monitor = QueueMonitor.over_fabric(fabric, period=1e-6)
    hops = {p.hop_index for p in monitor.ports}
    assert hops == {1, 2, 3, 4}


def test_idle_fabric_produces_no_samples():
    env, fabric, collector, _ = sim()
    monitor = QueueMonitor.over_fabric(fabric, period=1e-6)
    monitor.start()
    env.run(until=1e-5)
    monitor.stop()
    assert monitor.samples == []


def test_contention_queues_at_last_hop_not_core():
    """Many senders, one receiver: queueing concentrates at the
    receiver's ToR-down port (hop 4); the sprayed core stays shallow —
    the paper's 'why pHost works' argument made measurable."""
    env, fabric, collector, _ = sim()
    monitor = QueueMonitor.over_fabric(fabric, period=2e-6)
    monitor.start()
    collector.expected_flows = 11
    for i, sender in enumerate(range(1, 12)):
        flow = Flow(i, sender, 0, 1460 * 12, 0.0)
        env.schedule_at(0.0, fabric.hosts[sender].agent.start_flow, flow)
    env.run(until=0.01)
    monitor.stop()
    peaks = monitor.peak_bytes_by_hop()
    assert peaks.get(4, 0) > 0
    assert peaks.get(4, 0) >= peaks.get(3, 0)
    means = monitor.mean_bytes_by_hop()
    assert means[4] > 0


def test_peak_tracks_maximum():
    env, fabric, collector, _ = sim()
    port = fabric.hosts[0].port
    monitor = QueueMonitor(env, [port], period=1e-6)
    from repro.net.packet import Packet, PacketType

    # jam three packets behind a busy port, sample, then let them drain
    flow = Flow(99, 0, 1, 1460 * 1000, 0.0)  # far from completion
    for seq in range(4):
        port.send(Packet(PacketType.DATA, flow, seq, 0, 1, 1500, priority=1))
    monitor.sample()
    env.run(until=1e-4)
    monitor.sample()
    assert monitor.peak_bytes_by_hop()[1] == 3 * 1500
