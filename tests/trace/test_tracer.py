"""Tests for the packet tracer."""

from __future__ import annotations

import pytest

from repro.experiments.runner import build_simulation
from repro.experiments.spec import ExperimentSpec
from repro.net.packet import Flow
from repro.net.topology import TopologyConfig
from repro.trace import PacketTracer, TraceKind


def traced_sim(**tracer_kwargs):
    # Tracers ride ExperimentSpec.instruments; build_simulation binds
    # them to the run's SimContext (no hand-wiring).
    tracer = PacketTracer(**tracer_kwargs)
    spec = ExperimentSpec(
        protocol="phost",
        workload="fixed:1460",
        n_flows=1,
        topology=TopologyConfig.small(),
        instruments=(tracer,),
        seed=1,
    )
    ctx = build_simulation(spec)
    assert ctx.hooks == [tracer]
    return ctx.env, ctx.fabric, ctx.collector, tracer


def run_flow(env, fabric, collector, flow):
    collector.expected_flows = (collector.expected_flows or 0) + 1
    env.schedule_at(flow.arrival, fabric.hosts[flow.src].agent.start_flow, flow)


def test_full_flow_lifecycle_is_traced():
    env, fabric, collector, tracer = traced_sim()
    flow = Flow(1, 0, 5, 3 * 1460, 0.0)
    run_flow(env, fabric, collector, flow)
    env.run(until=0.01)
    kinds = [e.kind for e in tracer.events]
    assert kinds[0] == TraceKind.FLOW_ARRIVED
    assert kinds[-1] in (TraceKind.FLOW_COMPLETED, TraceKind.CONTROL_SENT)
    assert len(tracer.of_kind(TraceKind.DATA_SENT)) == 3
    assert len(tracer.of_kind(TraceKind.DATA_DELIVERED)) == 3
    # RTS out, ACK back at minimum
    assert len(tracer.of_kind(TraceKind.CONTROL_SENT)) >= 2
    assert len(tracer.of_kind(TraceKind.FLOW_COMPLETED)) == 1


def test_events_are_time_ordered():
    env, fabric, collector, tracer = traced_sim()
    for i in range(5):
        run_flow(env, fabric, collector, Flow(i, i, (i + 2) % 12, 1460 * 4, i * 1e-6))
    env.run(until=0.01)
    times = [e.time for e in tracer.events]
    assert times == sorted(times)


def test_fid_filter_restricts_events():
    env, fabric, collector, tracer = traced_sim(fids={7})
    run_flow(env, fabric, collector, Flow(7, 0, 5, 1460 * 2, 0.0))
    run_flow(env, fabric, collector, Flow(8, 1, 6, 1460 * 2, 0.0))
    env.run(until=0.01)
    assert all(e.fid == 7 for e in tracer.events)
    assert tracer.dropped_by_filter > 0


def test_kind_filter():
    env, fabric, collector, tracer = traced_sim(kinds={TraceKind.DATA_DELIVERED})
    run_flow(env, fabric, collector, Flow(1, 0, 5, 1460 * 3, 0.0))
    env.run(until=0.01)
    assert {e.kind for e in tracer.events} == {TraceKind.DATA_DELIVERED}


def test_ring_buffer_caps_memory():
    env, fabric, collector, tracer = traced_sim(capacity=10)
    run_flow(env, fabric, collector, Flow(1, 0, 5, 1460 * 40, 0.0))
    env.run(until=0.01)
    assert len(tracer) == 10


def test_timeline_is_readable():
    env, fabric, collector, tracer = traced_sim()
    run_flow(env, fabric, collector, Flow(3, 0, 5, 1460, 0.0))
    env.run(until=0.01)
    text = tracer.timeline(3)
    assert "--- flow 3" in text
    assert "flow_arrived" in text
    assert "data_delivered" in text


def test_drop_events_capture_hop():
    env, fabric, collector, tracer = traced_sim()
    # blast one receiver from many senders to force last-hop drops
    fid = 0
    for sender in range(1, 12):
        run_flow(env, fabric, collector, Flow(fid, sender, 0, 1460 * 8, 0.0))
        fid += 1
    env.run(until=0.05)
    drops = tracer.of_kind(TraceKind.PACKET_DROPPED)
    if drops:  # free-token burst collisions usually produce a few
        assert all(e.detail.startswith("hop") for e in drops)


def test_observers_stack():
    # Observers are additive: a second tracer coexists with the first
    # and both see the same events.
    env, fabric, collector, tracer = traced_sim()
    second = PacketTracer().attach(collector, fabric)
    run_flow(env, fabric, collector, Flow(1, 0, 1, 3000, 0.0))
    env.run(until=0.05)
    assert len(tracer) > 0
    assert len(second) == len(tracer)


def test_same_tracer_double_attach_rejected():
    env, fabric, collector, tracer = traced_sim()
    with pytest.raises(RuntimeError):
        tracer.attach(collector, fabric)


def test_capacity_validation():
    with pytest.raises(ValueError):
        PacketTracer(capacity=0)
