"""Unit tests for the event loop."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import EventLoop, SimulationError


def test_events_fire_in_time_order():
    env = EventLoop()
    fired = []
    env.schedule_at(3e-6, fired.append, "c")
    env.schedule_at(1e-6, fired.append, "a")
    env.schedule_at(2e-6, fired.append, "b")
    env.run()
    assert fired == ["a", "b", "c"]
    assert env.now == pytest.approx(3e-6)


def test_equal_times_fire_fifo():
    env = EventLoop()
    fired = []
    for tag in range(10):
        env.schedule_at(1e-6, fired.append, tag)
    env.run()
    assert fired == list(range(10))


def test_relative_schedule_accumulates_from_now():
    env = EventLoop()
    times = []

    def chain(depth):
        times.append(env.now)
        if depth:
            env.schedule(1e-6, chain, depth - 1)

    env.schedule(1e-6, chain, 2)
    env.run()
    assert times == pytest.approx([1e-6, 2e-6, 3e-6])


def test_cancel_prevents_execution():
    env = EventLoop()
    fired = []
    keep = env.schedule_at(1e-6, fired.append, "keep")
    drop = env.schedule_at(2e-6, fired.append, "drop")
    EventLoop.cancel(drop)
    env.run()
    assert fired == ["keep"]
    assert not EventLoop.is_pending(drop)
    assert not EventLoop.is_pending(keep)  # fired entries are not pending


def test_cancel_none_and_cancel_after_fire_are_noops():
    env = EventLoop()
    EventLoop.cancel(None)
    entry = env.schedule_at(1e-6, lambda: None)
    env.run()
    EventLoop.cancel(entry)  # no error


def test_run_until_advances_clock_without_firing_later_events():
    env = EventLoop()
    fired = []
    env.schedule_at(5e-6, fired.append, "late")
    executed = env.run(until=1e-6)
    assert executed == 0
    assert fired == []
    assert env.now == pytest.approx(1e-6)
    env.run()
    assert fired == ["late"]


def test_run_until_with_empty_heap_advances_clock():
    env = EventLoop()
    env.run(until=7e-6)
    assert env.now == pytest.approx(7e-6)


def test_stop_ends_run_early():
    env = EventLoop()
    fired = []
    env.schedule_at(1e-6, fired.append, 1)
    env.schedule_at(2e-6, lambda: env.stop())
    env.schedule_at(3e-6, fired.append, 3)
    env.run()
    assert fired == [1]
    assert env.pending_count() == 1


def test_max_events_limit():
    env = EventLoop()
    for i in range(10):
        env.schedule_at(i * 1e-6, lambda: None)
    executed = env.run(max_events=4)
    assert executed == 4
    assert env.pending_count() == 6


def test_scheduling_in_past_raises():
    env = EventLoop()
    env.schedule_at(1e-6, lambda: None)
    env.run()
    with pytest.raises(SimulationError):
        env.schedule_at(0.5e-6, lambda: None)
    with pytest.raises(SimulationError):
        env.schedule(-1e-9, lambda: None)


def test_events_processed_counter_accumulates():
    env = EventLoop()
    for i in range(5):
        env.schedule_at(i * 1e-6, lambda: None)
    env.run()
    assert env.events_processed == 5
    env.schedule(1e-6, lambda: None)
    env.run()
    assert env.events_processed == 6


def test_peek_time_skips_cancelled():
    env = EventLoop()
    first = env.schedule_at(1e-6, lambda: None)
    env.schedule_at(2e-6, lambda: None)
    EventLoop.cancel(first)
    assert env.peek_time() == pytest.approx(2e-6)


@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=60))
def test_property_execution_is_sorted(times):
    """Whatever order events are scheduled in, they execute sorted."""
    env = EventLoop()
    seen = []
    for t in times:
        env.schedule_at(t, lambda t=t: seen.append(t))
    env.run()
    assert seen == sorted(times)
    assert len(seen) == len(times)


@given(
    st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=40),
    st.data(),
)
def test_property_cancellation_removes_exactly_chosen(times, data):
    env = EventLoop()
    entries = []
    seen = []
    for i, t in enumerate(times):
        entries.append(env.schedule_at(t, lambda i=i: seen.append(i)))
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(times) - 1), max_size=len(times))
    )
    for i in to_cancel:
        EventLoop.cancel(entries[i])
    env.run()
    assert set(seen) == set(range(len(times))) - to_cancel


@given(st.data())
def test_property_model_based_schedule_cancel_step(data):
    """Random interleavings of schedule/cancel/step versus a naive
    list-based reference model.

    The model is a plain insertion-ordered list of live (time, id)
    pairs; a stable sort on time reproduces the loop's FIFO-among-ties
    contract.  After every operation ``pending_count()`` must agree
    with the model, and every executed batch must pop exactly the
    model's k earliest events, in order — covering the interactions of
    O(1) cancellation, eager compaction and the live-count bookkeeping
    that single-purpose tests miss.
    """
    env = EventLoop()
    fired = []
    model = []  # live events as (time, uid), insertion-ordered
    handles = {}
    uid = 0
    for _ in range(data.draw(st.integers(min_value=1, max_value=60))):
        op = data.draw(st.sampled_from(["schedule", "cancel", "step"]))
        if op == "schedule":
            t = env.now + data.draw(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
            )
            handles[uid] = env.schedule_at(t, lambda uid=uid: fired.append(uid))
            model.append((t, uid))
            uid += 1
        elif op == "cancel":
            if model:
                idx = data.draw(st.integers(min_value=0, max_value=len(model) - 1))
                _, victim = model.pop(idx)
                EventLoop.cancel(handles[victim])
                EventLoop.cancel(handles[victim])  # double-cancel is a no-op
        else:  # step
            k = data.draw(st.integers(min_value=0, max_value=5))
            expected = sorted(model, key=lambda e: e[0])[:k]
            before = len(fired)
            executed = env.run(max_events=k)
            assert executed == len(expected)
            assert fired[before:] == [u for _, u in expected]
            for entry in expected:
                model.remove(entry)
        assert env.pending_count() == len(model)
    expected = [u for _, u in sorted(model, key=lambda e: e[0])]
    before = len(fired)
    env.run()
    assert fired[before:] == expected
    assert env.pending_count() == 0


def test_clock_watcher_fires_only_for_smuggled_past_events():
    import heapq

    env = EventLoop()
    regressions = []
    env.set_clock_watcher(lambda now, when: regressions.append((now, when)))
    env.schedule_at(1e-6, lambda: None)
    env.schedule_at(2e-6, lambda: None)
    env.run()
    assert regressions == []  # legal schedules never trigger it

    entry = [env.now / 2, env._seq + 10**6, lambda: None, (), env]
    heapq.heappush(env._heap, entry)
    env._live += 1
    env.run()
    assert regressions == [(2e-6, 1e-6)]
    assert env.now == pytest.approx(1e-6)  # legacy behaviour: clock still moves


def test_pending_count_is_incremental_and_exact():
    env = EventLoop()
    entries = [env.schedule_at(i * 1e-6, lambda: None) for i in range(10)]
    assert env.pending_count() == 10
    for e in entries[:4]:
        EventLoop.cancel(e)
    assert env.pending_count() == 6
    EventLoop.cancel(entries[0])  # double-cancel must not double-count
    assert env.pending_count() == 6
    env.run(max_events=3)
    assert env.pending_count() == 3
    env.run()
    assert env.pending_count() == 0


def test_heap_compacts_when_mostly_cancelled():
    env = EventLoop()
    entries = [env.schedule_at(1.0 + i * 1e-6, lambda: None) for i in range(300)]
    assert len(env._heap) == 300
    # Cancel enough that cancelled entries outnumber live ones: the heap
    # must shrink well below the scheduled total without running.
    for e in entries[:200]:
        EventLoop.cancel(e)
    assert env.pending_count() == 100
    assert len(env._heap) < 300  # dead entries were reclaimed eagerly
    env.run()
    assert env.events_processed == 100


def test_compaction_during_run_callbacks_is_safe():
    env = EventLoop()
    survivors = []
    victims = [env.schedule_at(2e-6 + i * 1e-9, lambda: None) for i in range(200)]

    def cancel_most():
        for e in victims:
            EventLoop.cancel(e)  # triggers in-place compaction mid-run

    env.schedule_at(1e-6, cancel_most)
    env.schedule_at(3e-6, survivors.append, "late")
    env.run()
    assert survivors == ["late"]
    assert env.pending_count() == 0


def test_cancel_after_pop_is_a_counted_noop():
    """A cancel() racing the same tick's fire must not corrupt the
    live/cancelled ledgers: once the loop pops an entry it is dead, and
    cancelling it (from its own callback or any re-entrant path) is a
    no-op."""
    env = EventLoop()
    fired = []
    entries = []

    def cb(i):
        fired.append(i)
        EventLoop.cancel(entries[i])  # self-cancel of the firing entry
        if i:
            EventLoop.cancel(entries[i - 1])  # cancel an already-fired one

    for i in range(5):
        entries.append(env.schedule_at((i + 1) * 1e-6, cb, i))
    env.run()
    assert fired == [0, 1, 2, 3, 4]
    assert env.pending_count() == 0
    assert env._cancelled == 0  # no phantom corpses left behind
    assert env.events_processed == 5


def test_cancel_from_clock_watcher_sees_dead_entry():
    """The loop marks an entry fired *before* the clock watcher runs, so
    a watcher that cancels the offending entry cannot double-count it."""
    import heapq

    env = EventLoop()
    env.schedule_at(2e-6, lambda: None)
    env.run()

    fired = []
    entry = [1e-6, env._seq + 10**6, fired.append, ("late",), env]
    heapq.heappush(env._heap, entry)
    env._live += 1

    def watcher(now, when):
        EventLoop.cancel(entry)  # the entry is mid-fire: must be a no-op

    env.set_clock_watcher(watcher)
    env.run()
    assert fired == ["late"]  # the callback still ran exactly once
    assert env.pending_count() == 0
    assert env._cancelled == 0
