"""SimContext: the one object owning a run's moving parts.

`build_simulation` must hand back a fully-populated context for every
registered protocol, with agents constructed through the `(host, ctx)`
factory and instrumentation hooks bound via `ExperimentSpec.instruments`.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import build_simulation, run_flow_list
from repro.experiments.spec import ExperimentSpec
from repro.net.packet import Flow
from repro.net.topology import TopologyConfig
from repro.protocols.registry import get_protocol
from repro.sim import EventLoop, SeededRng, SimContext
from repro.trace import PacketTracer, TraceKind

ALL_PROTOCOLS = ["phost", "pfabric", "fastpass", "ideal"]


def tiny_spec(protocol: str, **overrides) -> ExperimentSpec:
    params = dict(
        protocol=protocol,
        workload="fixed:1460",
        n_flows=1,
        topology=TopologyConfig.small(),
        seed=1,
    )
    params.update(overrides)
    return ExperimentSpec(**params)


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_build_simulation_returns_populated_context(protocol):
    ctx = build_simulation(tiny_spec(protocol))
    assert isinstance(ctx, SimContext)
    assert isinstance(ctx.env, EventLoop)
    assert isinstance(ctx.rng, SeededRng)
    assert ctx.collector is not None
    assert ctx.config is not None
    proto = get_protocol(protocol)
    if proto.shared_factory is not None:
        assert ctx.shared is not None  # e.g. the Fastpass arbiter
    else:
        assert ctx.shared is None
    assert ctx.hooks == []


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_agents_are_built_from_the_context(protocol):
    ctx = build_simulation(tiny_spec(protocol))
    for host in ctx.fabric.hosts:
        agent = host.agent
        assert agent.ctx is ctx
        assert agent.env is ctx.env
        assert agent.fabric is ctx.fabric
        assert agent.collector is ctx.collector
        assert agent.config is ctx.config
        assert agent.shared is ctx.shared


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_context_wiring_completes_a_flow(protocol):
    ctx = build_simulation(tiny_spec(protocol))
    flow = Flow(1, 0, 5, 3 * 1460, 0.0)
    ctx.collector.expected_flows = 1
    ctx.env.schedule_at(0.0, ctx.fabric.hosts[0].agent.start_flow, flow)
    ctx.env.run(until=0.05)
    assert flow.completed


def test_instruments_bind_through_the_spec():
    tracer = PacketTracer()
    spec = tiny_spec("phost", instruments=[tracer])  # list normalizes to tuple
    assert spec.instruments == (tracer,)
    ctx = build_simulation(spec)
    assert ctx.hooks == [tracer]
    assert ctx.hooks_of_type(PacketTracer) == [tracer]
    result = run_flow_list(spec, [Flow(1, 0, 5, 2 * 1460, 0.0)], ctx)
    assert result.n_completed == 1
    assert len(tracer.of_kind(TraceKind.FLOW_COMPLETED)) == 1


def test_add_hook_prefers_bind_over_attach():
    class BindHook:
        def __init__(self):
            self.bound_to = None

        def bind(self, ctx):
            self.bound_to = ctx

    class AttachHook:
        def __init__(self):
            self.attached = None

        def attach(self, collector, fabric):
            self.attached = (collector, fabric)

    ctx = build_simulation(tiny_spec("phost"))
    bind_hook = ctx.add_hook(BindHook())
    attach_hook = ctx.add_hook(AttachHook())
    assert bind_hook.bound_to is ctx
    assert attach_hook.attached == (ctx.collector, ctx.fabric)
    assert ctx.hooks == [bind_hook, attach_hook]


def test_context_now_tracks_the_clock():
    ctx = build_simulation(tiny_spec("phost"))
    assert ctx.now == 0.0
    ctx.env.schedule_at(5e-6, lambda: None)
    ctx.env.run()
    assert ctx.now == pytest.approx(5e-6)
