"""Property tests for the conservative-sync core of repro.sim.shard.

The window/merge primitives are pure functions, so they are tested in
isolation from the simulator: Hypothesis drives random schedules
through a toy model of the round protocol and checks the invariants
the real coordinator (:func:`repro.sim.shard._drive`) relies on:

* **safety** — no cross-shard message is ever delivered at a time
  inside the horizon that was granted when it was sent (every effect
  stays at least one lookahead in the future);
* **progress** — the round loop always terminates: each granted window
  contains at least the globally-earliest pending event, so a finite
  schedule drains in finitely many rounds (no deadlock);
* **canonical merge** — merging per-shard ``(time, key)`` streams
  gives exactly the order a single shared queue would have produced.
"""

from __future__ import annotations

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.sim.shard import canonical_merge, next_window  # noqa: E402

LOOKAHEAD = 2e-7
GUARD = 1.0

times = st.floats(
    min_value=0.0, max_value=GUARD, allow_nan=False, allow_infinity=False
)


# ----------------------------------------------------------------------
# next_window in isolation
# ----------------------------------------------------------------------

@given(
    t_nexts=st.lists(times | st.just(math.inf), max_size=6),
    held=st.lists(times, max_size=6),
)
def test_next_window_grants_minimum_plus_lookahead(t_nexts, held):
    horizon = next_window(t_nexts, held, LOOKAHEAD, GUARD)
    cand = min(min(t_nexts, default=math.inf), min(held, default=math.inf))
    if cand == math.inf or cand > GUARD:
        assert horizon is None
    else:
        assert horizon == cand + LOOKAHEAD
        # The grant always strictly contains the earliest work item, so
        # every round executes or delivers something: progress.
        assert cand < horizon


@given(t_nexts=st.lists(st.floats(min_value=GUARD * 1.01, max_value=10.0), min_size=1, max_size=4))
def test_next_window_stops_on_guard(t_nexts):
    assert next_window(t_nexts, [], LOOKAHEAD, GUARD) is None


# ----------------------------------------------------------------------
# Toy round protocol: safety + progress + merge vs serial reference
# ----------------------------------------------------------------------

def _toy_events(draw_times, n_shards):
    """[(when, (when, sid, idx), sid, emits_to)] with canonical keys."""
    events = []
    for sid, whens in enumerate(draw_times):
        for idx, (when, target) in enumerate(whens):
            events.append((when, (when, sid, idx), sid, target % n_shards))
    return events


schedules = st.lists(
    st.lists(st.tuples(times, st.integers(min_value=0, max_value=3)), max_size=8),
    min_size=2,
    max_size=4,
)


@settings(max_examples=60, deadline=None)
@given(draw_times=schedules)
def test_round_protocol_safety_progress_and_merge(draw_times):
    n_shards = len(draw_times)
    events = _toy_events(draw_times, n_shards)

    # Per-shard pending queues (sorted by canonical (when, key) order)
    # plus coordinator-held in-flight messages, exactly like _drive.
    pending = [
        sorted([e for e in events if e[2] == sid]) for sid in range(n_shards)
    ]
    held = [[] for _ in range(n_shards)]
    executed = [[] for _ in range(n_shards)]
    rounds = 0
    max_rounds = 4 * (len(events) * 2 + 1) + 4  # generous progress bound

    while True:
        rounds += 1
        assert rounds <= max_rounds, "round loop failed to make progress"
        t_nexts = [q[0][0] if q else math.inf for q in pending]
        held_whens = [m[0] for q in held for m in q]
        horizon = next_window(t_nexts, held_whens, LOOKAHEAD, GUARD)
        if horizon is None:
            break
        # Deliver messages granted to this round.
        for sid in range(n_shards):
            for msg in held[sid]:
                pending[sid].append(msg)
            pending[sid].sort()
        held = [[] for _ in range(n_shards)]
        # Run every event below the horizon; emissions are one-lookahead
        # relays of the executing event (the toy analogue of a packet
        # crossing an inter-rack link).
        for sid in range(n_shards):
            queue = pending[sid]
            while queue and queue[0][0] < horizon:
                when, key, owner, target = queue.pop(0)
                executed[sid].append((when, key))
                if target != sid and when + LOOKAHEAD <= GUARD:
                    msg_when = when + LOOKAHEAD
                    # SAFETY: the emitted effect must not land inside
                    # the very window being executed.
                    assert msg_when + 1e-12 >= horizon
                    held[target].append(
                        (msg_when, (msg_when, sid, key), target, target)
                    )

    assert all(not q for q in held), "undelivered messages at termination"
    leftovers = [e for q in pending for e in q]
    assert all(e[0] > GUARD for e in leftovers), (
        "in-guard events left unexecuted at termination"
    )

    # Canonical merge of the per-shard executed streams must equal the
    # single-queue reference order over the same executed set.
    merged = canonical_merge(executed)
    reference = sorted(
        (item for stream in executed for item in stream),
        key=lambda item: (item[0], item[1]),
    )
    assert merged == reference


@given(
    streams=st.lists(
        st.lists(st.tuples(times, st.integers(0, 100)), max_size=10),
        max_size=4,
    )
)
def test_canonical_merge_equals_reference_merge(streams):
    merged = canonical_merge(streams)
    assert merged == sorted(
        (item for s in streams for item in s), key=lambda i: (i[0], i[1])
    )
    # Merging is a permutation: nothing invented, nothing dropped.
    assert len(merged) == sum(len(s) for s in streams)
