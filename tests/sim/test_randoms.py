"""Unit tests for seeded randomness."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.randoms import SeededRng


def test_same_seed_same_sequence():
    a = SeededRng(7)
    b = SeededRng(7)
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_different_seeds_differ():
    a = SeededRng(7)
    b = SeededRng(8)
    assert [a.random() for _ in range(20)] != [b.random() for _ in range(20)]


def test_named_streams_are_deterministic_and_cached():
    a = SeededRng(7)
    s1 = a.stream("arrivals")
    assert a.stream("arrivals") is s1
    b = SeededRng(7)
    assert [s1.random() for _ in range(5)] == [b.stream("arrivals").random() for _ in range(5)]


def test_streams_are_independent_of_parent_draw_order():
    """Drawing from one stream must not perturb a sibling stream."""
    a = SeededRng(7)
    _ = [a.stream("x").random() for _ in range(100)]
    ya = [a.stream("y").random() for _ in range(5)]
    b = SeededRng(7)
    yb = [b.stream("y").random() for _ in range(5)]
    assert ya == yb


@given(st.integers(min_value=2, max_value=100), st.data())
def test_other_than_never_returns_excluded(n, data):
    rng = SeededRng(data.draw(st.integers(0, 2**30)))
    excluded = data.draw(st.integers(min_value=0, max_value=n - 1))
    for _ in range(30):
        v = rng.other_than(n, excluded)
        assert 0 <= v < n
        assert v != excluded


def test_other_than_needs_two_values():
    with pytest.raises(ValueError):
        SeededRng(0).other_than(1, 0)


@given(st.integers(min_value=2, max_value=60))
def test_derangement_has_no_fixed_points(n):
    perm = SeededRng(n).derangement_permutation(n)
    assert sorted(perm) == list(range(n))
    assert all(perm[i] != i for i in range(n))


def test_expovariate_mean_roughly_matches_rate():
    rng = SeededRng(3)
    rate = 1e4
    samples = [rng.expovariate(rate) for _ in range(20_000)]
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(1.0 / rate, rel=0.05)


def test_sample_without_replacement():
    rng = SeededRng(5)
    picked = rng.sample(range(50), 10)
    assert len(set(picked)) == 10
    assert all(0 <= p < 50 for p in picked)


# ----------------------------------------------------------------------
# randbelow resolution (private-API alias with public fallback)
# ----------------------------------------------------------------------
def test_randbelow_prefers_private_fast_path():
    import random

    from repro.sim.randoms import _resolve_randbelow

    rng = random.Random(7)
    assert _resolve_randbelow(rng) == rng._randbelow


def test_randbelow_falls_back_to_public_api_same_stream():
    """Without ``_randbelow`` the resolver degrades to ``randrange`` —
    and the draw stream is identical, because ``randrange(n)`` performs
    exactly one ``_randbelow(n)`` draw."""
    import random

    from repro.sim.randoms import _resolve_randbelow

    class PublicOnly:
        """random.Random as a non-CPython interpreter might expose it:
        public draw methods only, no ``_randbelow`` attribute."""

        def __init__(self, seed):
            self._inner = random.Random(seed)

        def randrange(self, n):
            return self._inner.randrange(n)

    fallback = _resolve_randbelow(PublicOnly(99))
    reference = random.Random(99)
    draws = [fallback(1 + (i % 17)) for i in range(200)]
    assert draws == [reference._randbelow(1 + (i % 17)) for i in range(200)]


def test_randbelow_alias_matches_reference_stream():
    import random

    rng = SeededRng(1234)
    reference = random.Random(1234)
    assert [rng.randbelow(10) for _ in range(100)] == [
        reference._randbelow(10) for _ in range(100)
    ]
