"""Compiled-backend parity: digests must be byte-identical to pure.

The optional accelerated backend (``SimTuning.backend="compiled"``,
resolved by :mod:`repro.sim.backend`) replaces the dispatch loop and
the strict-priority port queue with compiled implementations.  That is
only admissible because of the suite below: the full protocol × seed
digest matrix agrees with the pure reference exactly, so the backend
knob is pure wall-clock.

When no compiled extension can be built (no gcc / headers / mypyc /
Cython), the whole module skips with a visible reason — the pure path
is already pinned elsewhere.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.net.topology import TopologyConfig
from repro.sim.tuning import SimTuning
from repro.validate import run_digest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

PROTOCOLS = ("phost", "pfabric", "fastpass", "dctcp")
SEEDS = (5, 11)


@pytest.fixture(scope="session")
def compiled_backend():
    """Build (if needed) and resolve the compiled backend, or skip."""
    from repro.sim import backend as backend_mod

    if not backend_mod.compiled_available():
        subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "build_backend.py")],
            capture_output=True,
            text=True,
            timeout=600,
        )
        # the availability probe is cached; reset it after the build
        backend_mod._cached_compiled = None
    if not backend_mod.compiled_available():
        pytest.skip(
            "no compiled backend: scripts/build_backend.py found neither "
            "mypyc, Cython, nor a working C toolchain on this machine"
        )
    return backend_mod.resolve_backend("compiled")


def _spec(protocol, seed, backend):
    return ExperimentSpec(
        protocol=protocol, workload="datamining", n_flows=60,
        topology=TopologyConfig.small(), max_flow_bytes=120_000, seed=seed,
        tuning=SimTuning(backend=backend),
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_compiled_digest_matches_pure(compiled_backend, protocol, seed):
    pure = run_digest(run_experiment(_spec(protocol, seed, "pure")))
    compiled = run_digest(run_experiment(_spec(protocol, seed, "compiled")))
    assert compiled == pure


def test_backend_info_reports_source(compiled_backend):
    from repro.sim.backend import backend_info

    info = backend_info()
    assert info["compiled_available"] is True
    assert info["source"] in (
        "repro.sim._hotcore",
        "repro.sim._hotpath_compiled",
    )
    assert info["has_drive"] or info["has_priority_queue"]


def test_requesting_compiled_without_build_warns(monkeypatch):
    """`backend="compiled"` with no extension degrades loudly, not
    silently: a RuntimeWarning pointing at the build script."""
    from repro.sim import backend as backend_mod

    monkeypatch.setattr(backend_mod, "_cached_compiled", None)
    monkeypatch.setattr(backend_mod, "_warned", False)

    def no_compiled():
        return None

    monkeypatch.setattr(backend_mod, "_load_compiled", no_compiled)
    with pytest.warns(RuntimeWarning, match="build_backend"):
        resolved = backend_mod.resolve_backend("compiled")
    assert resolved.name == "pure"
    # "auto" with the same absence stays silent by design
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert backend_mod.resolve_backend("auto").name == "pure"


def test_unknown_backend_rejected():
    from repro.sim.backend import resolve_backend

    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("jit")
    with pytest.raises(ValueError, match="backend"):
        SimTuning(backend="jit")
