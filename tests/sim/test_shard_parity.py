"""Shard-parity battery: sharded runs are byte-identical to serial.

The contract of :mod:`repro.sim.shard` is exact determinism — the
``run_digest`` of a sharded run must equal the serial run's, for any
shard count and either transport.  This battery pins that on the two
canonical scenario families:

* **fig3-tiny** — the websearch anchor scenario every other suite pins
  (goldens, bench smoke), moderate cross-rack traffic;
* **incast-skew** — an adversarial open-loop variant where every flow
  targets rack 0, producing synchronized cross-shard packet chains
  with hundreds of generations of equal-timestamp lineage ties (the
  regression shape that breaks naive tie-ordering schemes);
* **fig9c-tiny** — the closed-loop incast driver, which does not shard
  (the request loop is inherently global) and must stay bit-stable
  when sharding is requested anyway.

Serial references are computed once per scenario and shared across the
shard-count parametrization via a module-level cache.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import pytest

from repro.experiments.defaults import SCALES, make_spec
from repro.experiments.runner import run_experiment, run_incast
from repro.sim.tuning import SimTuning
from repro.validate import incast_digest, run_digest
from repro.workloads.skew import SkewConfig

PROTOCOLS = ("phost", "pfabric", "fastpass", "dctcp")
SEEDS = (42, 5)
SHARD_COUNTS = (1, 2, 4)

#: fig3-tiny phost seed42 event count, pinned against
#: benchmarks/results/bench_baseline.json (the bench --check pin).
FIG3_TINY_PHOST_EVENTS = 73876

GOLDEN_PATH = Path(__file__).parent.parent / "validate" / "golden_digests.json"


def fig3_spec(protocol: str, seed: int):
    return make_spec(protocol, "websearch", "tiny", seed=seed)


def incast_skew_spec(protocol: str, seed: int):
    """Open-loop all-to-rack-0 skew: maximal cross-shard lockstep."""
    return make_spec(protocol, "datamining", "tiny", seed=seed).variant(
        traffic_matrix="skewed",
        skew=SkewConfig(
            hot_racks=(0,),
            src_hot_fraction=0.0,
            dst_hot_fraction=1.0,
            rack_affinity=0.0,
        ),
    )


_serial_cache: dict = {}


def serial_digest(builder, protocol: str, seed: int) -> str:
    key = (builder.__name__, protocol, seed)
    if key not in _serial_cache:
        _serial_cache[key] = run_digest(run_experiment(builder(protocol, seed)))
    return _serial_cache[key]


def sharded_digest(spec, shards, transport="inprocess") -> str:
    tuned = spec.variant(
        tuning=SimTuning(shards=shards, shard_transport=transport)
    )
    with warnings.catch_warnings():
        # A silent fallback to serial would make parity pass vacuously.
        warnings.simplefilter("error", RuntimeWarning)
        return run_digest(run_experiment(tuned))


# ----------------------------------------------------------------------
# Digest parity + shard-count inertness
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fig3_tiny_sharded_matches_serial(protocol: str, seed: int):
    ref = serial_digest(fig3_spec, protocol, seed)
    for shards in SHARD_COUNTS:
        assert sharded_digest(fig3_spec(protocol, seed), shards) == ref, (
            f"shards={shards} digest diverged from serial"
        )


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_incast_skew_sharded_matches_serial(protocol: str):
    # One seed per protocol: this scenario is ~10x denser than fig3-tiny.
    ref = serial_digest(incast_skew_spec, protocol, 42)
    for shards in (2, 4):
        assert sharded_digest(incast_skew_spec(protocol, 42), shards) == ref


def test_process_transport_matches_inprocess():
    spec = fig3_spec("phost", 42)
    ref = serial_digest(fig3_spec, "phost", 42)
    assert sharded_digest(spec, 2, "processes") == ref


@pytest.mark.parametrize("protocol", ("phost", "dctcp"))
def test_fig9c_tiny_stable_when_sharding_requested(protocol: str):
    preset = SCALES["tiny"]

    def once(tuning):
        return incast_digest(
            run_incast(
                protocol,
                n_senders=9,
                total_bytes=preset.incast_bytes,
                n_requests=preset.incast_requests,
                topology=preset.topology,
                seed=42,
                tuning=tuning,
            )
        )

    assert once(None) == once(SimTuning(shards=2))


# ----------------------------------------------------------------------
# shards=off leaves the serial path untouched
# ----------------------------------------------------------------------

def test_shards_off_keeps_fig3_tiny_events_pin_and_golden():
    result = run_experiment(
        fig3_spec("phost", 42).variant(tuning=SimTuning(shards="off"))
    )
    assert result.events_processed == FIG3_TINY_PHOST_EVENTS
    goldens = json.loads(GOLDEN_PATH.read_text())
    assert run_digest(result) == goldens["fig3-tiny-phost-websearch-seed42"]


def test_sharded_run_reports_shard_stats():
    spec = fig3_spec("phost", 42).variant(
        tuning=SimTuning(shards=2, shard_transport="inprocess")
    )
    result = run_experiment(spec)
    stats = result.shard_stats
    assert stats is not None
    assert stats.n_shards == 2
    assert stats.transport == "inprocess"
    assert stats.rounds > 0
    assert len(stats.shards) == 2
    assert all(s.events_processed > 0 for s in stats.shards)
    # Serial results never carry shard stats.
    assert run_experiment(fig3_spec("phost", 42)).shard_stats is None


# ----------------------------------------------------------------------
# Unsupported specs fall back serially — loudly, and bit-identically
# ----------------------------------------------------------------------

def test_unsupported_spec_warns_and_matches_serial():
    spec = fig3_spec("phost", 42).variant(stability_samples=4)
    ref = run_digest(run_experiment(spec))
    with pytest.warns(RuntimeWarning, match="sharded execution unavailable"):
        result = run_experiment(spec.variant(tuning=SimTuning(shards=2)))
    assert run_digest(result) == ref
    assert result.shard_stats is None
