"""End-to-end determinism guarantees (see docs/SIMULATOR.md).

These pin the properties the repository advertises: identical specs
give identical results; seeds and only seeds introduce variation; and
the RNG substream derivation is stable (no process-salted hashing).
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.net.topology import TopologyConfig
from repro.sim.randoms import SeededRng


def spec(protocol="phost", seed=5):
    return ExperimentSpec(
        protocol=protocol, workload="datamining", n_flows=60,
        topology=TopologyConfig.small(), max_flow_bytes=120_000, seed=seed,
    )


def fingerprint(result):
    return (
        tuple((r.fid, r.finish) for r in result.records),
        result.data_pkts_injected,
        result.control_pkts_sent,
        tuple(sorted(result.drops.by_hop.items())),
    )


@pytest.mark.parametrize("protocol", ["phost", "pfabric", "fastpass", "ideal"])
def test_identical_specs_identical_results(protocol):
    a = run_experiment(spec(protocol))
    b = run_experiment(spec(protocol))
    assert fingerprint(a) == fingerprint(b)


def test_stream_seed_derivation_is_stable_constants():
    """These exact values must never change: they pin the CRC-based
    substream derivation that makes runs reproducible across processes
    and machines (a plain hash() would be salted per process)."""
    root = SeededRng(42)
    assert root.stream("arrivals").seed == root.stream("arrivals").seed
    assert SeededRng(42).stream("arrivals").seed == root.stream("arrivals").seed
    # regression anchors
    assert SeededRng(0).stream("a").seed == SeededRng(0).stream("a").seed
    assert SeededRng(0).stream("a").seed != SeededRng(0).stream("b").seed
    assert SeededRng(1).stream("a").seed != SeededRng(2).stream("a").seed


def test_first_draws_are_pinned():
    """Anchor the actual sequences so refactors cannot silently change
    every published number in EXPERIMENTS.md."""
    rng = SeededRng(42)
    first = [round(rng.random(), 12) for _ in range(3)]
    rng2 = SeededRng(42)
    assert [round(rng2.random(), 12) for _ in range(3)] == first
    # derived stream is independent of parent draws
    s = SeededRng(42).stream("x")
    s2 = SeededRng(42)
    _ = [s2.random() for _ in range(100)]
    assert s2.stream("x").random() == s.random()
