"""End-to-end determinism guarantees (see docs/SIMULATOR.md).

These pin the properties the repository advertises: identical specs
give identical results; seeds and only seeds introduce variation; and
the RNG substream derivation is stable (no process-salted hashing).
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.net.topology import TopologyConfig
from repro.sim.randoms import SeededRng
from repro.sim.tuning import SimTuning
from repro.validate import run_digest

PROTOCOLS = ["phost", "pfabric", "fastpass", "ideal", "dctcp"]


def spec(protocol="phost", seed=5):
    return ExperimentSpec(
        protocol=protocol, workload="datamining", n_flows=60,
        topology=TopologyConfig.small(), max_flow_bytes=120_000, seed=seed,
    )


def fingerprint(result):
    return (
        tuple((r.fid, r.finish) for r in result.records),
        result.data_pkts_injected,
        result.control_pkts_sent,
        tuple(sorted(result.drops.by_hop.items())),
    )


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_identical_specs_identical_results(protocol):
    a = run_experiment(spec(protocol))
    b = run_experiment(spec(protocol))
    assert fingerprint(a) == fingerprint(b)


@lru_cache(maxsize=None)
def digest_of(protocol: str, seed: int) -> str:
    """One cached reference run per (protocol, seed)."""
    return run_digest(run_experiment(spec(protocol, seed)))


@pytest.mark.parametrize("seed", [5, 11])
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_same_seed_byte_identical_digest(protocol, seed):
    """Same spec run twice -> byte-identical run digest.

    Stronger than the fingerprint test above: the digest covers every
    completion record field, the per-hop drop ledger and the packet
    counters, so any nondeterminism anywhere in the pipeline flips it.
    """
    fresh = run_digest(run_experiment(spec(protocol, seed)))
    assert fresh == digest_of(protocol, seed)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_different_seeds_different_digests(protocol):
    assert digest_of(protocol, 5) != digest_of(protocol, 11)


def test_protocols_produce_distinct_digests():
    """Sanity that the digest actually discriminates behaviour: the
    protocols (even ideal, a reconfigured Fastpass) must not collide on
    the same workload and seed."""
    digests = [digest_of(p, 5) for p in PROTOCOLS]
    assert len(set(digests)) == len(PROTOCOLS)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_generic_dataplane_engine_matches_fused_queues(protocol):
    """The ProgramQueue engine is the semantic reference for the fused
    queue classes: running every protocol with
    ``SimTuning(fused_dataplane=False)`` must be byte-identical to the
    optimized run.  (For dctcp the knob is vacuous — it always runs the
    generic engine — which this test also pins.)"""
    generic = run_digest(
        run_experiment(
            spec(protocol, 5).variant(tuning=SimTuning(fused_dataplane=False))
        )
    )
    assert generic == digest_of(protocol, 5)


@pytest.mark.parametrize("seed", [5, 11])
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_tuning_knobs_do_not_change_behaviour(protocol, seed):
    """The hot-path optimizations (timer wheel, fused ports, inline
    drain, packet pooling) are pure performance: with everything OFF
    the digest must be byte-identical to the optimized reference run."""
    baseline = run_digest(
        run_experiment(spec(protocol, seed).variant(tuning=SimTuning.baseline()))
    )
    assert baseline == digest_of(protocol, seed)


@pytest.mark.parametrize(
    "tuning",
    [
        SimTuning(timer_wheel=False),
        SimTuning(fused_ports=False),
        SimTuning(inline_drain=False),
        SimTuning(packet_pool=False),
        SimTuning(fused_dataplane=False),
        SimTuning(batch_dispatch=False),
        SimTuning(backend="auto"),
    ],
    ids=[
        "no-wheel",
        "no-fusion",
        "no-drain",
        "no-pool",
        "no-fused-dataplane",
        "no-batch",
        "backend-auto",
    ],
)
def test_each_tuning_knob_is_independently_inert(tuning):
    """Disable one optimization at a time: any digest drift localizes
    the misbehaving fast path immediately."""
    fresh = run_digest(run_experiment(spec("phost", 5).variant(tuning=tuning)))
    assert fresh == digest_of("phost", 5)


# ----------------------------------------------------------------------
# figT adversarial-workload determinism: the skew/ramp/coflow/trace
# layers must be exactly as reproducible as the flat generator.

FIGT_PROTOCOLS = ["phost", "pfabric", "fastpass", "dctcp"]


def figt_spec(protocol="phost", seed=5):
    """A spec exercising every figT workload axis at once: hot-rack
    skew with affinity, a burst load ramp, and coflow structure."""
    from repro.workloads.coflows import CoflowConfig
    from repro.workloads.ramp import LoadProfile
    from repro.workloads.skew import SkewConfig

    return ExperimentSpec(
        protocol=protocol, workload="datamining", n_flows=60,
        topology=TopologyConfig.small(), max_flow_bytes=120_000, seed=seed,
        traffic_matrix="skewed",
        skew=SkewConfig(hot_racks=(0,), src_hot_fraction=0.6,
                        dst_hot_fraction=0.8, rack_affinity=0.2),
        load_profile=LoadProfile(((0.0, 1.0), (0.002, 3.0), (0.004, 1.0))),
        coflows=CoflowConfig(min_flows=2, max_flows=5),
    )


@lru_cache(maxsize=None)
def figt_digest_of(protocol: str, seed: int) -> str:
    return run_digest(run_experiment(figt_spec(protocol, seed)))


@pytest.mark.parametrize("seed", [5, 11])
@pytest.mark.parametrize("protocol", FIGT_PROTOCOLS)
def test_figt_workloads_byte_identical_digest(protocol, seed):
    """Skewed + ramped + coflow runs re-executed from scratch produce
    byte-identical digests across all protocols and seeds."""
    fresh = run_digest(run_experiment(figt_spec(protocol, seed)))
    assert fresh == figt_digest_of(protocol, seed)


@pytest.mark.parametrize("protocol", FIGT_PROTOCOLS)
def test_figt_different_seeds_different_digests(protocol):
    assert figt_digest_of(protocol, 5) != figt_digest_of(protocol, 11)


def test_figt_workload_differs_from_flat_workload():
    """The adversarial knobs actually change the run (they are not
    silently ignored by the runner)."""
    assert figt_digest_of("phost", 5) != digest_of("phost", 5)


def test_figt_tuning_baseline_is_inert():
    """Optimization knobs stay pure-performance on adversarial
    workloads too."""
    baseline = run_digest(
        run_experiment(figt_spec("phost", 5).variant(tuning=SimTuning.baseline()))
    )
    assert baseline == figt_digest_of("phost", 5)


def test_traced_replay_matches_generated_run(tmp_path):
    """Saving a generated workload to a trace and replaying it via
    ``trace=`` produces a byte-identical digest: generated flows are
    already arrival-sorted with sequential fids, so the loader's
    sort-and-renumber is the identity and the simulation sees the same
    flow list."""
    from repro.experiments.runner import build_simulation, _generate_flows
    from repro.workloads.trace_io import save_flows

    base = spec("phost", 7)
    ctx = build_simulation(base)
    flows = _generate_flows(base, ctx.fabric, SeededRng(base.seed))
    path = tmp_path / "figt-replay.jsonl"
    save_flows(flows, path)

    generated = run_digest(run_experiment(base))
    replayed = run_digest(run_experiment(base.variant(trace=str(path))))
    assert replayed == generated


def test_stream_seed_derivation_is_stable_constants():
    """These exact values must never change: they pin the CRC-based
    substream derivation that makes runs reproducible across processes
    and machines (a plain hash() would be salted per process)."""
    root = SeededRng(42)
    assert root.stream("arrivals").seed == root.stream("arrivals").seed
    assert SeededRng(42).stream("arrivals").seed == root.stream("arrivals").seed
    # regression anchors
    assert SeededRng(0).stream("a").seed == SeededRng(0).stream("a").seed
    assert SeededRng(0).stream("a").seed != SeededRng(0).stream("b").seed
    assert SeededRng(1).stream("a").seed != SeededRng(2).stream("a").seed


def test_first_draws_are_pinned():
    """Anchor the actual sequences so refactors cannot silently change
    every published number in EXPERIMENTS.md."""
    rng = SeededRng(42)
    first = [round(rng.random(), 12) for _ in range(3)]
    rng2 = SeededRng(42)
    assert [round(rng2.random(), 12) for _ in range(3)] == first
    # derived stream is independent of parent draws
    s = SeededRng(42).stream("x")
    s2 = SeededRng(42)
    _ = [s2.random() for _ in range(100)]
    assert s2.stream("x").random() == s.random()
