"""Property-based tests for the hierarchical timing wheel.

The wheel's contract is strict: routing a timer through it must be
*observably identical* to scheduling it straight onto the heap — same
fire order, same cancellation semantics, same final clock — for any
mix of times (including ones that land in higher wheel levels and
cascade back down) and any cancellation pattern.  Hypothesis explores
that space; the pinned regression cases at the bottom keep the worst
historical offenders (slot aliasing, rollover off-by-one) covered even
under ``--hypothesis-profile`` settings with few examples.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sim.engine import EventLoop

# Wheel resolution used throughout: 1us (the engine default).
RES = 1e-6
# Level spans: level 0 covers 256 ticks, level 1 covers 256*256, etc.
L0 = 256 * RES
L1 = 256 * 256 * RES

# Times from sub-tick to beyond the level-1 horizon, so placements hit
# every wheel level plus the too-soon / too-far heap fallbacks.
times = st.floats(
    min_value=RES / 10, max_value=2 * L1, allow_nan=False, allow_infinity=False
)


def _run_both(schedule_plan, cancel_idx=frozenset()):
    """Run the same plan with the wheel on and off; return both traces."""
    traces = []
    for enabled in (True, False):
        env = EventLoop(timer_resolution=RES)
        env.timer_wheel_enabled = enabled
        fired = []
        handles = [
            env.schedule_timer_at(when, lambda i=i, w=when: fired.append((i, w)))
            for i, when in enumerate(schedule_plan)
        ]
        for idx in cancel_idx:
            EventLoop.cancel(handles[idx])
        env.run()
        traces.append((fired, env.now, env.pending_count()))
    return traces


@given(st.lists(times, min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_wheel_fire_order_matches_pure_heap(plan):
    (wheel_fired, wheel_now, wheel_pending), (heap_fired, heap_now, heap_pending) = (
        _run_both(plan)
    )
    assert wheel_fired == heap_fired
    assert wheel_now == heap_now
    assert wheel_pending == heap_pending == 0


@given(st.lists(times, min_size=2, max_size=40), st.data())
@settings(max_examples=60, deadline=None)
def test_wheel_cancellation_matches_pure_heap(plan, data):
    cancel_idx = frozenset(
        data.draw(
            st.sets(
                st.integers(min_value=0, max_value=len(plan) - 1),
                max_size=len(plan),
            )
        )
    )
    (wheel_fired, _, wheel_pending), (heap_fired, _, heap_pending) = _run_both(
        plan, cancel_idx
    )
    assert wheel_fired == heap_fired
    assert wheel_pending == heap_pending == 0
    assert {i for i, _ in wheel_fired}.isdisjoint(cancel_idx)


@given(
    st.lists(
        st.floats(min_value=L0 / 2, max_value=1.5 * L1, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=40, deadline=None)
def test_wheel_rollover_cascades_preserve_order(plan):
    """Times straddling the level-0/1/2 boundaries: entries parked in
    outer levels must cascade down and fire in exact time order."""
    env = EventLoop(timer_resolution=RES)
    fired = []
    for i, when in enumerate(plan):
        env.schedule_timer_at(when, lambda i=i, w=when: fired.append((w, i)))
    env.run()
    assert [pair[1] for pair in fired] == [
        i for _, i in sorted((w, i) for i, w in enumerate(plan))
    ]
    assert len(fired) == len(plan)
    assert env.pending_count() == 0


def test_wheel_same_tick_timers_fire_in_schedule_order():
    env = EventLoop(timer_resolution=RES)
    fired = []
    when = 137 * RES  # one slot, many timers
    for i in range(20):
        env.schedule_timer_at(when, fired.append, i)
    env.run()
    assert fired == list(range(20))


def test_wheel_cancel_all_leaves_clean_loop():
    env = EventLoop(timer_resolution=RES)
    handles = [
        env.schedule_timer_at((i + 2) * RES, lambda: None) for i in range(100)
    ]
    for h in handles:
        EventLoop.cancel(h)
        EventLoop.cancel(h)  # double-cancel must stay a no-op
    assert env.pending_count() == 0
    env.run()
    assert env.events_processed == 0


def test_wheel_slot_alias_regression():
    """Two timers 256 ticks apart share a level-0 slot index; the tick
    tag must keep the far one from firing a full wheel turn early."""
    env = EventLoop(timer_resolution=RES)
    fired = []
    near, far = 10 * RES, (10 + 256) * RES
    env.schedule_timer_at(far, fired.append, "far")
    env.schedule_timer_at(near, fired.append, "near")
    env.schedule_at(near + RES, lambda: fired.append("mid"))
    env.run()
    assert fired == ["near", "mid", "far"]
    assert env.now >= far


def test_wheel_interleaves_with_heap_events():
    """Timers (wheel) and plain events (heap) at interleaved times must
    fire in one globally sorted order."""
    env = EventLoop(timer_resolution=RES)
    fired = []
    for i in range(30):
        when = (i + 2) * 3 * RES
        if i % 2:
            env.schedule_timer_at(when, fired.append, (i, "timer"))
        else:
            env.schedule_at(when, fired.append, (i, "event"))
    env.run()
    assert [i for i, _ in fired] == list(range(30))
