"""Parity suite for the carved-out inner loop (repro.sim.hotpath).

``hotpath.drive`` and ``HotPriorityQueue`` are the compile targets of
the optional accelerated backend — and the executable specification of
the C core.  These tests hold them byte-identical to the inlined
``EventLoop.run`` loop and to ``PriorityQueue`` so every backend
variant (pure, mypyc/Cython, hand-written C) inherits one proven
semantics.
"""

from __future__ import annotations

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.net.packet import Flow, Packet, PacketType
from repro.net.queues import PriorityQueue
from repro.net.topology import TopologyConfig
from repro.sim import hotpath
from repro.sim.engine import EventLoop
from repro.validate import run_digest


def _spec(protocol="phost", seed=5):
    return ExperimentSpec(
        protocol=protocol, workload="datamining", n_flows=60,
        topology=TopologyConfig.small(), max_flow_bytes=120_000, seed=seed,
    )


# ----------------------------------------------------------------------
# heap primitives vs heapq
# ----------------------------------------------------------------------
_KEYS = st.lists(
    st.tuples(
        st.one_of(
            st.integers(min_value=0, max_value=50),
            st.floats(min_value=0.0, max_value=50.0,
                      allow_nan=False, allow_infinity=False),
        ),
        st.integers(min_value=0, max_value=10_000),  # seq, made unique below
    ),
    min_size=0,
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(_KEYS)
def test_heap_primitives_match_heapq(keys):
    """Same push sequence, same pop order — on int *and* float times,
    with heavy (time) collisions broken by the unique seq."""
    entries = [
        [when, i, (lambda: None), (), None] for i, (when, _) in enumerate(keys)
    ]
    ours, theirs = [], []
    for e in entries:
        hotpath.heap_push(ours, list(e))
        heapq.heappush(theirs, list(e))
    order_a = [tuple(hotpath.heap_pop_min(ours)[:2]) for _ in range(len(entries))]
    order_b = [tuple(heapq.heappop(theirs)[:2]) for _ in range(len(entries))]
    assert order_a == order_b


def test_heap_primitives_interoperate_with_heapq():
    """schedule() uses heapq.heappush while drive() pops with the
    custom sift — both maintain the same invariant, so mixing is safe."""
    heap = []
    for i, when in enumerate([5.0, 1.0, 3.0, 1.0, 4.0, 0.5]):
        heapq.heappush(heap, [when, i, None, (), None])
    hotpath.heap_push(heap, [2.0, 99, None, (), None])
    popped = [hotpath.heap_pop_min(heap)[0] for _ in range(len(heap))]
    assert popped == sorted(popped)


# ----------------------------------------------------------------------
# drive() vs EventLoop.run
# ----------------------------------------------------------------------
def test_drive_digest_parity_full_run():
    reference = run_digest(run_experiment(_spec()))
    env_digest = {}

    class Probe:
        """Instrumentation hook installing hotpath.drive into the loop."""

        def bind(self, ctx):
            ctx.env.set_drive(hotpath.drive)
            env_digest["env"] = ctx.env
            return self

    res = run_experiment(_spec().variant(instruments=(Probe(),)))
    assert run_digest(res) == reference
    # the driven loop really was the one that ran
    assert env_digest["env"].events_processed > 0


def test_drive_handles_stop_budget_and_empty_run():
    env = EventLoop()
    env.set_drive(hotpath.drive)
    fired = []
    for k in range(4):
        env.schedule_at(1.0, fired.append, k)
    assert env.run(max_events=2) == 2
    assert fired == [0, 1]
    env.schedule_at(2.0, env.stop)
    env.schedule_at(3.0, fired.append, 99)
    env.run()
    assert 99 not in fired
    env.run()  # drains the remaining event
    assert fired == [0, 1, 2, 3, 99]
    assert env.run() == 0  # empty heap: no-op
    assert env.run(until=7.5) == 0
    assert env.now == 7.5


def test_drive_restores_flags_on_callback_exception():
    env = EventLoop()
    env.set_drive(hotpath.drive)

    def boom():
        raise RuntimeError("boom")

    env.schedule_at(1.0, boom)
    before = env.events_processed
    try:
        env.run()
    except RuntimeError:
        pass
    else:  # pragma: no cover - the exception must propagate
        raise AssertionError("callback exception swallowed")
    assert env._no_drain is True
    assert env._until is None
    # mirrors the inlined loop: the aborted drive adds nothing
    assert env.events_processed == before


# ----------------------------------------------------------------------
# HotPriorityQueue vs PriorityQueue
# ----------------------------------------------------------------------
def _mk_pkt(i, size, priority):
    flow = Flow(fid=i, src=0, dst=1, size_bytes=size, arrival=0.0)
    return Packet(PacketType.DATA, flow, 0, 0, 1, size, priority=priority)


_QOPS = st.lists(
    st.tuples(
        st.sampled_from(["push", "pop", "peek"]),
        st.integers(min_value=40, max_value=3000),   # size
        st.integers(min_value=-2, max_value=9),      # priority (clamped)
    ),
    min_size=1,
    max_size=80,
)


@settings(max_examples=200, deadline=None)
@given(_QOPS, st.integers(min_value=1, max_value=8))
def test_hot_queue_matches_reference_queue(ops, n_bands):
    ref = PriorityQueue(capacity_bytes=20_000, n_bands=n_bands)
    hot = hotpath.HotPriorityQueue(20_000, n_bands)
    for i, (op, size, priority) in enumerate(ops):
        if op == "push":
            pkt = _mk_pkt(i, size, priority)
            assert list(hot.push(pkt)) == list(ref.push(pkt))
        elif op == "pop":
            assert hot.pop() is ref.pop()
        else:
            assert hot.peek() is ref.peek()
        assert (hot.bytes_queued, hot.pkts_queued, len(hot), bool(hot)) == (
            ref.bytes_queued, ref.pkts_queued, len(ref), bool(ref)
        )
        assert [list(b) for b in hot.bands] == [list(b) for b in ref.bands]
    while ref.pkts_queued:
        assert hot.pop() is ref.pop()
    assert hot.pop() is None and ref.pop() is None
