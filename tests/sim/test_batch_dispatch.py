"""Batched same-timestamp dispatch must be invisible.

The batch sweep in :meth:`repro.sim.engine.EventLoop.run` drains every
event sharing the head timestamp without re-entering the outer loop.
These tests pin the one property that makes that legal: execution
order, observable state, and counters are *identical* to one-at-a-time
dispatch — including under cancellations, stop(), event budgets, and
timers poured from the wheel mid-batch (the subtle case: a callback may
park the run's first wheel timer whose pour lands at the batch's own
timestamp, so the sweep must yield to the pour between tie members).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import EventLoop


def _make_loop(batch: bool, wheel: bool = True) -> EventLoop:
    env = EventLoop()
    env.batch_dispatch = batch
    env.timer_wheel_enabled = wheel
    return env


# ----------------------------------------------------------------------
# Property: a random program executes identically batch-on and batch-off
# ----------------------------------------------------------------------
#: One op = (kind, time_slot, payload).  Times are quantized to a few
#: slots so same-timestamp ties are common, which is the entire point.
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["event", "tie", "cancel_next", "timer", "chain"]),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1,
    max_size=24,
)


def _run_program(ops, batch: bool):
    """Execute a schedule program; returns (log, events, now, batches)."""
    env = _make_loop(batch)
    log = []
    handles = []

    def fire(tag):
        log.append((tag, env.now))

    def chain(tag, slot, extra):
        # A callback scheduling more work *at its own timestamp* — the
        # new entries join the tie currently being swept.
        log.append((tag, env.now))
        for k in range(extra):
            env.schedule_at(env.now, fire, f"{tag}+{k}")

    def cancel_one(tag):
        log.append((tag, env.now))
        while handles:
            handle = handles.pop()
            if handle[2] is not None:  # not yet fired
                env.cancel(handle)
                return

    for i, (kind, slot, payload) in enumerate(ops):
        when = slot * 0.25
        if kind == "event":
            handles.append(env.schedule_at(when, fire, f"ev{i}"))
        elif kind == "tie":
            # several entries at exactly the same instant
            for k in range(payload + 1):
                handles.append(env.schedule_at(when, fire, f"tie{i}.{k}"))
        elif kind == "cancel_next":
            handles.append(env.schedule_at(when, cancel_one, f"cx{i}"))
        elif kind == "timer":
            # parked in the wheel; poured back mid-run — including the
            # pour-due-at-batch-time case when `when` ties other events
            handles.append(env.schedule_timer_at(when + 1e-6 * payload, fire, f"tm{i}"))
        elif kind == "chain":
            handles.append(env.schedule_at(when, chain, f"ch{i}", slot, payload))
    env.run()
    return log, env.events_processed, env.now, env.batches


@settings(max_examples=200, deadline=None)
@given(_OPS)
def test_batched_order_identical_to_unbatched(ops):
    base = _run_program(ops, batch=False)
    batched = _run_program(ops, batch=True)
    assert batched[0] == base[0]  # execution log: same order, same times
    assert batched[1] == base[1]  # events_processed
    assert batched[2] == base[2]  # final clock
    assert base[3] == 0  # batch-off never counts batches


def test_callback_parking_first_wheel_timer_due_at_batch_time():
    """The wheel-safety case spelled out: mid-tie, a callback parks the
    run's *first* wheel timer whose pour is due at the tie's own
    timestamp.  The sweep must break to the pour so the poured timer
    interleaves by (time, seq) exactly as in one-at-a-time dispatch."""

    def program(batch):
        env = _make_loop(batch)
        log = []

        def fire(tag):
            log.append((tag, env.now))

        def parker():
            log.append(("parker", env.now))
            # first wheel use of the run: cursor is far behind `now`,
            # so the pour for this timer lands at/after the current tie
            env.schedule_timer(0.0, fire, "timer")

        t = 1.0
        env.schedule_at(t, parker)
        env.schedule_at(t, fire, "tie-a")
        env.schedule_at(t, fire, "tie-b")
        env.schedule_at(t + 0.5, fire, "later")
        env.run()
        return log, env.events_processed

    assert program(True) == program(False)


def test_batch_counters_account_for_swept_ties():
    env = _make_loop(batch=True)
    fired = []
    for k in range(5):
        env.schedule_at(1.0, fired.append, k)
    env.schedule_at(2.0, fired.append, 99)
    env.run()
    assert fired == [0, 1, 2, 3, 4, 99]
    assert env.events_processed == 6
    # one batch at t=1.0 swept 4 events after the head; t=2.0 is alone
    assert env.batches == 1
    assert env.batched_events == 4


def test_stop_mid_batch_halts_sweep():
    env = _make_loop(batch=True)
    fired = []
    env.schedule_at(1.0, fired.append, 0)
    env.schedule_at(1.0, lambda: env.stop())
    env.schedule_at(1.0, fired.append, 2)  # same tie, after the stop
    env.run()
    assert fired == [0]
    assert env.events_processed == 2  # head + the stopping callback


def test_budget_mid_batch_halts_sweep():
    env = _make_loop(batch=True)
    fired = []
    for k in range(6):
        env.schedule_at(1.0, fired.append, k)
    executed = env.run(max_events=3)
    assert executed == 3
    assert fired == [0, 1, 2]
    # remaining tie members stay scheduled and run on the next call
    assert env.run(max_events=None) == 3
    assert fired == [0, 1, 2, 3, 4, 5]


def test_cancel_mid_batch_skips_corpse_without_counting_it():
    env = _make_loop(batch=True)
    fired = []
    victim = env.schedule_at(1.0, fired.append, "victim")

    def killer():
        fired.append("killer")
        env.cancel(victim)

    env.schedule_at(1.0, killer)
    # NB: killer was scheduled after victim, so seq orders victim first…
    env.schedule_at(0.5, fired.append, "warm")
    # …unless an earlier event cancels it first; re-cancel via a fresh
    # tie where the killer *precedes* the victim:
    victim2 = env.schedule_at(2.0, fired.append, "victim2")
    env.schedule_at(1.5, lambda: env.cancel(victim2))
    env.run()
    assert fired == ["warm", "victim", "killer"]
    assert env.events_processed == 4
