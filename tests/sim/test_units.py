"""Unit tests for wire constants and unit helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim import units


def test_constants_match_paper():
    assert units.MTU_BYTES == 1500
    assert units.HEADER_BYTES == 40       # "All control packets ... are of 40 bytes"
    assert units.MSS_BYTES == 1460
    assert units.CONTROL_BYTES == 40


def test_tx_time_10g_mtu():
    # One MTU at 10 Gbps is 1.2 us — the paper's token interval base.
    assert units.tx_time(1500, units.gbps(10)) == pytest.approx(1.2e-6)


def test_unit_conversions():
    assert units.gbps(40) == 40e9
    assert units.usec(45) == pytest.approx(45e-6)
    assert units.nsec(200) == pytest.approx(200e-9)
    assert units.msec(1.5) == pytest.approx(1.5e-3)


@pytest.mark.parametrize(
    "size,expected",
    [(0, 1), (1, 1), (1460, 1), (1461, 2), (2920, 2), (2921, 3), (100_000_000, 68_494)],
)
def test_packets_for_bytes(size, expected):
    assert units.packets_for_bytes(size) == expected


def test_wire_bytes_adds_header():
    assert units.wire_bytes(1460) == 1500
    assert units.wire_bytes(1) == 41


@given(st.integers(min_value=1, max_value=10**10))
def test_property_packet_count_covers_size_minimally(size):
    n = units.packets_for_bytes(size)
    assert n * units.MSS_BYTES >= size
    assert (n - 1) * units.MSS_BYTES < size
