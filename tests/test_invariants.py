"""Cross-protocol invariants over full simulations.

Every transport, whatever its mechanism, must satisfy conservation and
sanity properties on a complete run.  These are the repository's
strongest integration tests: they run all three protocols on a real
fabric and check properties that any correct packet transport obeys.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.net.topology import TopologyConfig

PROTOCOLS = ["phost", "pfabric", "fastpass"]


def run(protocol, seed=3, **overrides):
    params = dict(
        protocol=protocol,
        workload="imc10",
        load=0.6,
        n_flows=150,
        topology=TopologyConfig.small(),
        max_flow_bytes=150_000,
        seed=seed,
    )
    params.update(overrides)
    return run_experiment(ExperimentSpec(**params))


@pytest.fixture(
    scope="module",
    params=[(p, seed) for p in PROTOCOLS for seed in (3, 11)],
    ids=lambda ps: f"{ps[0]}-seed{ps[1]}",
)
def result(request):
    protocol, seed = request.param
    return run(protocol, seed=seed)


def test_all_flows_complete(result):
    assert result.n_completed == result.n_flows


def test_slowdown_at_least_one(result):
    for r in result.records:
        assert r.slowdown is not None
        assert r.slowdown >= 1.0 - 1e-9, (r.fid, r.slowdown)


def test_packet_conservation(result):
    offered = sum(r.n_pkts for r in result.records)
    # every offered packet was injected exactly once...
    assert result.data_pkts_injected == offered
    # ...and every sent packet was either delivered or dropped (dupes at
    # the receiver are not re-counted as deliveries)
    sent = result.data_pkts_injected + result.data_pkts_retransmitted
    assert sent >= offered
    assert result.drops.total_drops <= sent


def test_bytes_delivered_match_flow_sizes(result):
    assert result.payload_bytes_delivered == sum(r.size_bytes for r in result.records)


def test_fct_never_beats_wire_time(result):
    for r in result.records:
        assert r.fct >= r.size_bytes * 8 / 10e9  # access-link lower bound


def test_finish_after_arrival_and_within_run(result):
    for r in result.records:
        assert r.finish > r.arrival
        assert r.finish <= result.records[-1].arrival + 10  # sane horizon


def test_retransmissions_only_with_cause(result):
    """pHost/Fastpass recover losses with timeout-based, at-least-once
    mechanisms; without drops they may race a just-in-time delivery and
    duplicate a handful of packets, but never a meaningful fraction.
    (pFabric's aggressive RTO is exempt — spurious RTOs are its design.)"""
    if result.spec.protocol != "pfabric" and result.drops.total_drops == 0:
        budget = max(5, result.data_pkts_injected // 200)  # 0.5%
        assert result.data_pkts_retransmitted <= budget


def test_throughput_below_line_rate(result):
    assert 0 < result.goodput_gbps_per_host < 10.0


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_higher_load_does_not_improve_slowdown(protocol):
    lo = run(protocol, load=0.3, seed=5)
    hi = run(protocol, load=0.85, seed=5)
    assert hi.mean_slowdown() >= lo.mean_slowdown() * 0.9  # allow small noise


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_core_stays_uncongested_with_spraying(protocol):
    """Paper §2.3: spraying + full bisection removes core congestion, so
    drops inside the fabric (hops 2-3) are ~zero for every protocol."""
    r = run(protocol, seed=9)
    assert r.drops.fabric_drops <= max(2, r.drops.total_drops // 20)
