#!/usr/bin/env python3
"""Multi-tenant fairness — the policy-flexibility argument (§3.3, Fig 11).

Two tenants share the fabric: tenant 0 runs an IMC10-like workload
(short flows), tenant 1 a Web-Search-like workload (longer flows).
pFabric's in-fabric SRPT implicitly privileges the short-flow tenant;
pHost, reconfigured with its tenant-fair token policy (one line of
config — no fabric change), splits bandwidth evenly.

Run:  python examples/multi_tenant_fairness.py
"""

from repro import PHostConfig, TopologyConfig
from repro.experiments.runner import run_tenant_fairness

TENANTS = {0: "imc10", 1: "websearch"}


def main() -> None:
    topo = TopologyConfig.small()
    budget = 2_000_000 * topo.n_hosts  # equal per-tenant byte budgets

    print("Throughput share while both tenants are backlogged")
    print(f"{'protocol':22s} {'imc10 tenant':>13s} {'websearch tenant':>17s}")
    for label, protocol, config in (
        ("pHost (tenant-fair)", "phost", PHostConfig.tenant_fair()),
        ("pFabric (in-fabric)", "pfabric", None),
    ):
        result = run_tenant_fairness(
            protocol,
            TENANTS,
            bytes_per_tenant=budget,
            topology=topo,
            max_flow_bytes=2_000_000,
            protocol_config=config,
            seed=11,
        )
        print(
            f"{label:22s} {result.share_of(0):13.1%} {result.share_of(1):17.1%}"
        )
    print(
        "\npHost's fairness comes purely from the end-host token policy:\n"
        "  PHostConfig.tenant_fair() == grant/spend policy 'tenant_fair',\n"
        "  uniform data priority, zero free tokens (paper §4.4)."
    )


if __name__ == "__main__":
    main()
