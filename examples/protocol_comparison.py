#!/usr/bin/env python3
"""The paper's headline experiment, in miniature (Figures 3 and 4).

Runs pHost against pFabric and Fastpass on each workload and prints the
mean slowdown overall and split into short/long flows.  Expect the
paper's shape: pHost tracks pFabric closely, while Fastpass pays an
epoch + RTT penalty on every short flow.

Run:  python examples/protocol_comparison.py
"""

from repro import ExperimentSpec, TopologyConfig, run_experiment
from repro.workloads.distributions import LONG_FLOW_THRESHOLD

PROTOCOLS = ("phost", "pfabric", "fastpass")
WORKLOADS = ("websearch", "datamining", "imc10")


def main() -> None:
    print(f"{'workload':12s} {'protocol':10s} {'slowdown':>9s} "
          f"{'short':>7s} {'long':>7s} {'drops':>6s}")
    for workload in WORKLOADS:
        threshold = min(LONG_FLOW_THRESHOLD[workload], 100_000)
        for protocol in PROTOCOLS:
            spec = ExperimentSpec(
                protocol=protocol,
                workload=workload,
                load=0.6,
                n_flows=250,
                topology=TopologyConfig.small(),
                max_flow_bytes=300_000,   # keep the example fast
                seed=7,
            )
            result = run_experiment(spec)
            short, long_ = result.short_long_slowdown(threshold)
            print(
                f"{workload:12s} {protocol:10s} "
                f"{result.mean_slowdown():9.3f} {short:7.2f} {long_:7.2f} "
                f"{result.drops.total_drops:6d}"
            )
        print()


if __name__ == "__main__":
    main()
