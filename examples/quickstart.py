#!/usr/bin/env python3
"""Quickstart: run pHost on the paper's fabric and read the results.

Simulates a few hundred flows of the IMC10 workload at 0.6 load over a
scaled-down two-tier fabric, then prints the metrics the paper reports:
mean slowdown, tail slowdown, NFCT, goodput and drops.

Run:  python examples/quickstart.py
"""

from repro import ExperimentSpec, TopologyConfig, run_experiment


def main() -> None:
    spec = ExperimentSpec(
        protocol="phost",           # the paper's transport
        workload="imc10",           # heavy-tailed production trace shape
        load=0.6,                   # the paper's default operating point
        n_flows=300,
        topology=TopologyConfig.small(),  # 12 hosts; .paper() for 144
        seed=42,
    )
    result = run_experiment(spec)

    print(f"completed        : {result.n_completed}/{result.n_flows} flows")
    print(f"mean slowdown    : {result.mean_slowdown():.3f}")
    print(f"99%ile slowdown  : {result.tail_slowdown(99):.3f}")
    print(f"normalized FCT   : {result.nfct():.3f}")
    print(f"goodput per host : {result.goodput_gbps_per_host:.2f} Gbps")
    print(f"packet drops     : {result.drops.total_drops} "
          f"(rate {result.drops.drop_rate:.2e})")
    print(f"control overhead : {result.control_bytes_sent} bytes "
          f"({result.control_pkts_sent} pkts)")

    # Per-flow records are plain dataclasses — slice them however you like.
    shortest = min(result.records, key=lambda r: r.size_bytes)
    print(f"\nsmallest flow    : {shortest.size_bytes} B, "
          f"slowdown {shortest.slowdown:.2f}")


if __name__ == "__main__":
    main()
