#!/usr/bin/env python3
"""The Figure 1 micro-scenario: token wastage and source downgrading.

One sender starts two flows at once, to two different receivers.  Both
receivers grant tokens at full rate, but the sender's access link can
only serve one of them — so roughly half of all granted tokens expire
unused and the receivers periodically downgrade the flow (paper §3.2).
This script traces grants, expirations and downgrades so the mechanism
is visible.

Run:  python examples/token_dynamics.py
"""

from repro.experiments.runner import build_simulation
from repro.experiments.spec import ExperimentSpec
from repro.net.packet import Flow
from repro.net.topology import TopologyConfig


def main() -> None:
    spec = ExperimentSpec(
        protocol="phost",
        workload="fixed:1460",  # unused; flows built below
        n_flows=1,
        topology=TopologyConfig.small(),
        seed=1,
    )
    ctx = build_simulation(spec)
    env, fabric, collector, cfg = ctx.env, ctx.fabric, ctx.collector, ctx.config

    sender = 0
    dst_a, dst_b = 4, 8  # two different racks
    n_pkts = 200
    flow_a = Flow(1, sender, dst_a, n_pkts * 1460, 0.0)
    flow_b = Flow(2, sender, dst_b, n_pkts * 1460, 0.0)

    collector.expected_flows = 2
    for flow in (flow_a, flow_b):
        env.schedule_at(0.0, fabric.hosts[sender].agent.start_flow, flow)

    def stop_when_done(flow, now):
        if collector.all_complete:
            env.stop()

    collector.on_complete = stop_when_done
    env.run(until=0.1)

    src = fabric.hosts[sender].agent.source
    print(f"two {n_pkts}-packet flows from host {sender} "
          f"to hosts {dst_a} and {dst_b}\n")
    for flow, dst in ((flow_a, dst_a), (flow_b, dst_b)):
        dest = fabric.hosts[dst].agent.destination
        fct = (flow.finish - flow.arrival) * 1e6
        opt = fabric.opt_fct(flow.size_bytes, sender, dst) * 1e6
        print(f"flow {flow.fid}: FCT {fct:8.1f} us (lone-flow OPT {opt:.1f} us, "
              f"slowdown {fct / opt:.2f})")
        print(f"  tokens granted by receiver : {dest.tokens_granted}")
    print(f"\ntokens expired unused at the sender : {src.tokens_expired}")
    print(
        "\nBoth receivers offer tokens at line rate but the sender can\n"
        "only use half of them; expiry (1.5 MTU-times) plus downgrading\n"
        "keeps the receivers from wasting their own downlinks (paper §3.2).\n"
        "The two flows finish in ~2x the lone-flow time - the sender's\n"
        "access link is shared, as it must be."
    )


if __name__ == "__main__":
    main()
