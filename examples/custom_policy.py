#!/usr/bin/env python3
"""Plugging a custom scheduling objective into pHost.

The paper's central flexibility claim (§2.2, §3.3): because scheduling
lives at the end hosts, a new policy is just code — no fabric change.
This example registers a "smallest-flow-first" policy (rank by *total*
flow size rather than remaining packets, i.e. SJF instead of SRPT) and
runs it side by side with the built-ins.

Run:  python examples/custom_policy.py
"""

from repro import ExperimentSpec, PHostConfig, TopologyConfig, run_experiment
from repro.protocols.phost.policies import SchedulingPolicy, register_policy


class SJFPolicy(SchedulingPolicy):
    """Shortest Job First: rank candidates by total flow size.

    Unlike SRPT, a flow's rank never improves as it progresses, so long
    flows cannot climb the ladder by nearing completion.
    """

    name = "sjf"

    def key(self, state, ctx=None):
        return (state.flow.size_bytes, state.flow.arrival, state.flow.fid)


def run(policy: str) -> float:
    spec = ExperimentSpec(
        protocol="phost",
        workload="imc10",
        load=0.65,
        n_flows=300,
        topology=TopologyConfig.small(),
        max_flow_bytes=200_000,
        protocol_config=PHostConfig(grant_policy=policy, spend_policy=policy),
        seed=5,
    )
    return run_experiment(spec).mean_slowdown()


def main() -> None:
    register_policy(SJFPolicy)
    print("pHost mean slowdown by token scheduling policy\n")
    for policy in ("srpt", "sjf", "fifo"):
        print(f"  {policy:6s} -> {run(policy):.3f}")
    print(
        "\nSJF was registered at runtime with register_policy(SJFPolicy);\n"
        "the fabric and the protocol machinery are untouched."
    )


if __name__ == "__main__":
    main()
