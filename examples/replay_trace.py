#!/usr/bin/env python3
"""Running the simulator on your own flow trace.

Production traces are the natural input for this simulator.  The trace
format is plain CSV (arrival,src,dst,size_bytes[,tenant[,deadline]]);
this example writes a small synthetic trace, replays it under two
protocols, and shows that a saved trace reproduces bit-identical
results — the workflow for archiving an experiment.

Run:  python examples/replay_trace.py
"""

import tempfile
from pathlib import Path

from repro import ExperimentSpec, SeededRng, TopologyConfig
from repro.experiments.runner import run_flow_list
from repro.workloads.distributions import data_mining
from repro.workloads.generator import FlowGenerator
from repro.workloads.traffic_matrix import AllToAll
from repro.workloads.trace_io import load_flows, save_flows


def main() -> None:
    topo = TopologyConfig.small()
    gen = FlowGenerator(
        data_mining().truncated(500_000), AllToAll(topo.n_hosts),
        topo.access_bps, 0.6, SeededRng(17),
    )
    flows = gen.generate(200)

    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "datamining.csv"
        n = save_flows(flows, trace)
        print(f"wrote {n} flows to {trace.name} "
              f"({trace.stat().st_size} bytes)\n")

        print(f"{'protocol':10s} {'mean slowdown':>14s} {'p99':>7s} {'drops':>6s}")
        for protocol in ("phost", "pfabric"):
            spec = ExperimentSpec(
                protocol=protocol,
                workload="fixed:1",   # ignored when replaying
                n_flows=1,
                topology=topo,
                seed=17,
            )
            result = run_flow_list(spec, load_flows(trace, n_hosts=topo.n_hosts))
            print(f"{protocol:10s} {result.mean_slowdown():14.3f} "
                  f"{result.tail_slowdown():7.2f} {result.drops.total_drops:6d}")

        # replays are exact: same trace + same seed => same FCTs
        spec = ExperimentSpec(protocol="phost", workload="fixed:1", n_flows=1,
                              topology=topo, seed=17)
        a = run_flow_list(spec, load_flows(trace, n_hosts=topo.n_hosts))
        b = run_flow_list(spec, load_flows(trace, n_hosts=topo.n_hosts))
        identical = [r.finish for r in a.records] == [r.finish for r in b.records]
        print(f"\nreplay reproducibility: {'bit-identical' if identical else 'DIVERGED'}")


if __name__ == "__main__":
    main()
