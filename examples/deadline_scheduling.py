#!/usr/bin/env python3
"""Deadline-constrained traffic with EDF token scheduling (§3.3, Fig 5c).

Assigns every flow an exponential deadline (mean 1000 us, floored at
1.25x its ideal FCT) and compares pHost running SRPT against pHost
running Earliest-Deadline-First on both the grant (receiver) and spend
(sender) sides — the same protocol, two scheduling objectives.

Run:  python examples/deadline_scheduling.py
"""

from repro import ExperimentSpec, PHostConfig, TopologyConfig, run_experiment


def run_with(config, label: str) -> None:
    spec = ExperimentSpec(
        protocol="phost",
        workload="datamining",
        load=0.7,
        n_flows=400,
        topology=TopologyConfig.small(),
        max_flow_bytes=200_000,
        with_deadlines=True,
        protocol_config=config,
        seed=21,
    )
    result = run_experiment(spec)
    print(
        f"{label:24s} deadlines met: {result.deadline_met_fraction():6.1%}   "
        f"mean slowdown: {result.mean_slowdown():.3f}"
    )


def main() -> None:
    print("pHost scheduling policy comparison under deadline traffic\n")
    run_with(PHostConfig.deadline(), "EDF grant+spend")
    run_with(PHostConfig.paper_default(), "SRPT grant+spend")
    run_with(PHostConfig(grant_policy="fifo", spend_policy="fifo"), "FIFO grant+spend")
    print(
        "\nEDF is wired in exactly like SRPT: the source embeds the\n"
        "deadline in its RTS and both ends rank flows by it (paper §3.3)."
    )


if __name__ == "__main__":
    main()
