#!/usr/bin/env python3
"""Incast: N senders fan into one receiver (Figures 9c/9d).

Each request splits a fixed payload across N uniformly-chosen senders;
requests are issued closed-loop.  The interesting observation from the
paper: varying N barely moves the request completion time because the
receiver's access link is the bottleneck either way.

Run:  python examples/incast_pattern.py
"""

from repro import TopologyConfig, run_incast


def main() -> None:
    topo = TopologyConfig.small()
    total_bytes = 2_000_000
    print(f"incast, {total_bytes/1e6:g} MB per request, closed loop\n")
    print(f"{'senders':>7s} {'protocol':>9s} {'mean FCT (us)':>14s} {'mean RCT (us)':>14s}")
    for n_senders in (2, 5, 10):
        for protocol in ("phost", "pfabric", "fastpass"):
            result = run_incast(
                protocol,
                n_senders=n_senders,
                total_bytes=total_bytes,
                n_requests=4,
                topology=topo,
                seed=33,
            )
            print(
                f"{n_senders:7d} {protocol:>9s} "
                f"{result.mean_fct * 1e6:14.1f} {result.mean_rct * 1e6:14.1f}"
            )
        print()


if __name__ == "__main__":
    main()
